"""Adaptive re-placement: extending VELA to non-stationary workloads.

The paper profiles locality once and relies on Theorem 1's stability for the
rest of the run — valid for a single fine-tuning dataset.  But practitioners
chain datasets (curriculum schedules, multi-task mixes), and a dataset
switch moves the hot experts (the paper's own Fig. 7 shows WikiText and
Alpaca prefer different experts).  This module adds the natural extension:

* watch the realized routing distribution during the run,
* when it drifts past a threshold from the profile the current placement
  was planned for, re-solve the LP on a recent window,
* pay an explicit **migration cost** — expert weights moved across the
  cluster at link speed — before the new placement takes effect.

``run_adaptive`` replays a trace under this policy and reports when
re-placement paid for itself; the companion benchmark compares static VELA,
adaptive VELA, and a free-migration oracle on a phase-switching workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cluster.topology import ClusterTopology
from ..models.config import MoEModelConfig
from ..placement.base import Placement, PlacementProblem
from ..placement.vela import LocalityAwarePlacement
from ..routing.trace import RoutingTrace
from ..runtime.engine import MasterWorkerEngine
from ..runtime.metrics import RunMetrics
from .config import VelaConfig


def profile_drift(expected: np.ndarray, observed: np.ndarray) -> float:
    """Mean per-layer total-variation distance between two access profiles.

    Both are ``(layers, experts)`` matrices whose rows sum to ``top_k``;
    the result is in ``[0, 1]`` (0 = identical, 1 = disjoint support).
    """
    expected = np.asarray(expected, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if expected.shape != observed.shape:
        raise ValueError("profile shapes differ")
    row_mass = expected.sum(axis=1, keepdims=True)
    tv = 0.5 * np.abs(expected - observed).sum(axis=1) / row_mass[:, 0]
    return float(tv.mean())


def migration_plan_bytes(old: Placement, new: Placement,
                         config: MoEModelConfig) -> np.ndarray:
    """Bytes each worker must *receive* to realize the new placement.

    An expert that changes workers ships its frozen fp16 weights plus LoRA
    state (~expert_nbytes) to the new host.
    """
    if old.assignment.shape != new.assignment.shape:
        raise ValueError("placement shapes differ")
    moved = old.assignment != new.assignment
    expert_bytes = config.expert_nbytes()
    num_workers = max(int(old.assignment.max()), int(new.assignment.max())) + 1
    incoming = np.zeros(num_workers)
    for layer, expert in np.argwhere(moved):
        incoming[new.assignment[layer, expert]] += expert_bytes
    return incoming


def migration_time(old: Placement, new: Placement, config: MoEModelConfig,
                   topology: ClusterTopology) -> float:
    """Seconds to ship moved experts, transfers to each worker serialized.

    Conservative model: every moved expert travels master->worker (the
    master holds the checkpoint), workers receive in parallel.
    """
    incoming = migration_plan_bytes(old, new, config)
    worst = 0.0
    for worker in range(min(len(incoming), topology.num_workers)):
        if incoming[worker] <= 0:
            continue
        link = topology.master_link(worker)
        worst = max(worst, link.transfer_time(float(incoming[worker])))
    return worst


@dataclass
class ReplacementEvent:
    """One re-placement decision during an adaptive run."""

    step: int
    drift: float
    experts_moved: int
    migration_time_s: float


@dataclass
class AdaptiveRunResult:
    """Metrics of an adaptive replay plus its re-placement history."""

    metrics: RunMetrics
    events: List[ReplacementEvent] = field(default_factory=list)

    @property
    def num_replacements(self) -> int:
        """Re-placement events during the run."""
        return len(self.events)

    def total_migration_time(self) -> float:
        """Seconds spent migrating experts across the run."""
        return sum(e.migration_time_s for e in self.events)


class AdaptivePlacementController:
    """Drift-triggered re-placement policy.

    Parameters
    ----------
    config:
        System configuration (model, topology, capacities, geometry).
    check_interval:
        Steps between drift checks.
    drift_threshold:
        Mean total-variation distance that triggers re-placement.
    window:
        Trailing steps used to estimate the current profile.
    """

    def __init__(self, config: VelaConfig, check_interval: int = 20,
                 drift_threshold: float = 0.15, window: int = 20):
        if check_interval < 1 or window < 1:
            raise ValueError("check_interval and window must be positive")
        if not 0 < drift_threshold < 1:
            raise ValueError("drift_threshold must be in (0, 1)")
        self.config = config
        self.check_interval = check_interval
        self.drift_threshold = drift_threshold
        self.window = window
        self.strategy = LocalityAwarePlacement()

    def _problem(self, probability: np.ndarray) -> PlacementProblem:
        return PlacementProblem(
            config=self.config.model, topology=self.config.topology,
            probability_matrix=probability,
            tokens_per_step=self.config.tokens_per_step,
            capacities=self.config.worker_capacities())

    def run(self, trace: RoutingTrace,
            initial_profile: np.ndarray) -> AdaptiveRunResult:
        """Replay ``trace`` with drift-triggered re-placement."""
        cfg = self.config
        placement = self.strategy.place(self._problem(initial_profile))
        planned_profile = initial_profile
        engine = MasterWorkerEngine(cfg.model, cfg.topology, placement,
                                    cfg.tokens_per_step, cfg.seq_len,
                                    lora_rank=cfg.lora_rank,
                                    strategy_name="adaptive-vela")
        run = RunMetrics(strategy="adaptive-vela")
        events: List[ReplacementEvent] = []
        pending_migration = 0.0

        for step in range(trace.num_steps):
            metrics = engine.run_step(trace.step_counts(step), step=step)
            if pending_migration > 0:
                metrics = _with_extra_time(metrics, pending_migration)
                pending_migration = 0.0
            run.append(metrics)

            due = (step + 1) % self.check_interval == 0
            if not due or step + 1 < self.window:
                continue
            observed = trace.probability_matrix(step + 1 - self.window,
                                                step + 1)
            drift = profile_drift(planned_profile, observed)
            if drift < self.drift_threshold:
                continue
            new_placement = self.strategy.place(self._problem(observed))
            moved = int((new_placement.assignment !=
                         placement.assignment).sum())
            if moved == 0:
                planned_profile = observed
                continue
            cost = migration_time(placement, new_placement, cfg.model,
                                  cfg.topology)
            events.append(ReplacementEvent(step=step + 1, drift=drift,
                                           experts_moved=moved,
                                           migration_time_s=cost))
            placement = new_placement
            planned_profile = observed
            pending_migration = cost
            engine = MasterWorkerEngine(cfg.model, cfg.topology, placement,
                                        cfg.tokens_per_step, cfg.seq_len,
                                        lora_rank=cfg.lora_rank,
                                        strategy_name="adaptive-vela")

        return AdaptiveRunResult(metrics=run, events=events)


def _with_extra_time(metrics, extra: float):
    """Return a StepMetrics copy with migration time added to the step."""
    from ..runtime.metrics import StepMetrics

    return StepMetrics(step=metrics.step,
                       total_time=metrics.total_time + extra,
                       comm_time=metrics.comm_time + extra,
                       compute_time=metrics.compute_time,
                       sync_time=metrics.sync_time,
                       allreduce_time=metrics.allreduce_time,
                       total_bytes=metrics.total_bytes,
                       cross_node_bytes=metrics.cross_node_bytes,
                       num_nodes=metrics.num_nodes)


def phase_switch_trace(config: MoEModelConfig, regimes, tokens_per_step: int,
                       steps_per_phase: int, seed: int = 0) -> RoutingTrace:
    """A non-stationary workload: concatenated phases, one regime each.

    Models a fine-tuning curriculum that switches datasets mid-run — the
    scenario where static single-profile placement goes stale.
    """
    from ..routing.synthetic import SyntheticRouter

    if steps_per_phase < 1:
        raise ValueError("steps_per_phase must be positive")
    counts = []
    name_parts = []
    for phase, regime in enumerate(regimes):
        router = SyntheticRouter(config, regime, seed=seed + phase * 1000)
        trace = router.generate_trace(steps_per_phase, tokens_per_step)
        counts.append(trace.counts)
        name_parts.append(regime.name)
    return RoutingTrace(model_name=f"{config.name}/{'+'.join(name_parts)}",
                        top_k=config.top_k, tokens_per_step=tokens_per_step,
                        counts=np.concatenate(counts, axis=0))
