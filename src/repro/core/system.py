"""The VELA system facade: profile -> place -> run.

This is the public entry point a downstream user reaches for first:

>>> from repro import VelaSystem, VelaConfig
>>> from repro.models import mixtral_8x7b_sim
>>> from repro.cluster import paper_cluster
>>> from repro.routing import SyntheticRouter, WIKITEXT_REGIME
>>>
>>> config = VelaConfig(model=mixtral_8x7b_sim(), topology=paper_cluster())
>>> system = VelaSystem(config)
>>> router = SyntheticRouter(config.model, WIKITEXT_REGIME, seed=1)
>>> profile = router.probability_matrix(config.profile_tokens)
>>> solution = system.plan(profile)
>>> trace = router.generate_trace(num_steps=50,
...                               tokens_per_step=config.tokens_per_step)
>>> metrics = system.simulate(trace, solution.placement)
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..placement.base import Placement, PlacementProblem, PlacementStrategy
from ..placement.vela import LocalityAwarePlacement, PlacementSolution
from ..routing.trace import RoutingTrace
from ..runtime.engine import ExpertParallelEngine, MasterWorkerEngine
from ..runtime.metrics import RunMetrics
from .config import VelaConfig


class VelaSystem:
    """Locality-aware MoE fine-tuning: the paper's full pipeline."""

    def __init__(self, config: VelaConfig,
                 strategy: Optional[PlacementStrategy] = None):
        self.config = config
        self.strategy = strategy or LocalityAwarePlacement()

    # ------------------------------------------------------------------ #
    # step 1-2: locality profile -> placement
    # ------------------------------------------------------------------ #
    def placement_problem(self,
                          probability_matrix: Optional[np.ndarray] = None
                          ) -> PlacementProblem:
        """Build the optimization input from the system configuration."""
        return PlacementProblem(
            config=self.config.model,
            topology=self.config.topology,
            probability_matrix=probability_matrix,
            tokens_per_step=self.config.tokens_per_step,
            capacities=self.config.worker_capacities())

    def plan(self, probability_matrix: np.ndarray) -> PlacementSolution:
        """Solve locality-aware placement for a measured locality profile."""
        strategy = self.strategy
        problem = self.placement_problem(probability_matrix)
        if isinstance(strategy, LocalityAwarePlacement):
            return strategy.solve(problem)
        placement = strategy.place(problem)
        from ..placement.objective import expected_step_comm_time
        objective = expected_step_comm_time(placement, problem)
        return PlacementSolution(placement=placement,
                                 relaxed_assignment=placement.to_binary_tensor(
                                     problem.num_workers),
                                 lp_objective=objective,
                                 rounded_objective=objective)

    def place(self, probability_matrix: np.ndarray) -> Placement:
        """Compute a placement for ``problem``."""
        return self.plan(probability_matrix).placement

    # ------------------------------------------------------------------ #
    # step 3: replay fine-tuning on the simulated cluster
    # ------------------------------------------------------------------ #
    def simulate(self, trace: RoutingTrace, placement: Placement,
                 max_steps: Optional[int] = None,
                 expert_parallel: bool = False) -> RunMetrics:
        """Run a fine-tuning trace under a placement.

        ``expert_parallel=True`` uses the conventional all-to-all runtime
        instead of VELA's master-worker framework.
        """
        cfg = self.config
        engine_cls = ExpertParallelEngine if expert_parallel else MasterWorkerEngine
        engine = engine_cls(cfg.model, cfg.topology, placement,
                            cfg.tokens_per_step, cfg.seq_len,
                            lora_rank=cfg.lora_rank)
        return engine.run_trace(trace, max_steps=max_steps)

    def run(self, probability_matrix: np.ndarray, trace: RoutingTrace,
            max_steps: Optional[int] = None) -> Dict[str, object]:
        """Full pipeline: plan from the profile, then simulate the trace."""
        solution = self.plan(probability_matrix)
        metrics = self.simulate(trace, solution.placement, max_steps=max_steps)
        return {"solution": solution, "metrics": metrics}
