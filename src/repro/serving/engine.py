"""Decode-time serving simulation with expert offloading.

Models the Fiddler/MoE-Infinity deployment the paper's related work covers:
a single GPU whose memory holds only part of the expert set; the rest lives
in host RAM and is fetched over PCIe on a cache miss.  Each decode step
routes one token through every MoE block; per-token latency is

    compute(all blocks) + fetch_penalty * (misses this token)

Expert locality is the entire game: with skewed routing, a small cache plus
a good policy approaches all-resident latency.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cluster.device import DeviceSpec, v100_32gb
from ..models.config import MoEModelConfig
from ..models.moe_block import DISPATCH_MODES
from ..models.transformer import MoETransformer
from ..nn.quant import quantize_expert_weights
from ..nn.tensor import no_grad
from ..parallel.shm import WEIGHT_FORMATS
from ..routing.synthetic import SyntheticRouter
from ..runtime.flops import FlopModel
from ..telemetry import Telemetry
from ..telemetry.monitor import RoutingHealthMonitor
from .cache import ExpertCache


@dataclass(frozen=True)
class ServingConfig:
    """Hardware assumptions of the offloaded-serving simulation.

    ``pcie_bandwidth`` and ``fetch_latency`` price a host->device expert
    fetch; defaults approximate PCIe 3.0 x16 and driver overheads.

    ``weight_format`` selects what actually moves over the bus on a cache
    miss: ``"fp16"`` (the paper's accounting, 2 bytes/param) or ``"int8"``
    (the :mod:`repro.nn.quant` format — 1 byte/param codes plus one float
    scale per output channel), which roughly halves per-miss fetch time.
    """

    device: DeviceSpec = field(default_factory=v100_32gb)
    pcie_bandwidth: float = 12e9
    fetch_latency_s: float = 0.5e-3
    context_len: int = 512
    weight_format: str = "fp16"

    def __post_init__(self) -> None:
        if self.weight_format not in ("fp16", "int8"):
            raise ValueError(f"weight_format must be 'fp16' or 'int8', "
                             f"got {self.weight_format!r}")

    def fetch_time(self, expert_nbytes: int) -> float:
        """Seconds to fetch one expert from host memory."""
        return self.fetch_latency_s + expert_nbytes / self.pcie_bandwidth

    def expert_fetch_nbytes(self, config: MoEModelConfig) -> int:
        """Bytes one expert fetch moves, at the configured weight format."""
        if self.weight_format == "fp16":
            return config.expert_nbytes(bytes_per_param=2)
        # int8: 1-byte codes per parameter plus 8-byte per-output-channel
        # scales for the three projection matrices (w_gate/w_up: ffn rows
        # each, w_down: hidden rows).
        h, f = config.hidden_size, config.ffn_hidden_size
        return config.expert_num_params() + 8 * (2 * f + h)


@dataclass
class ServingMetrics:
    """Per-token latency series plus cache statistics."""

    token_latencies: np.ndarray
    hit_rate: float
    evictions: int
    fetch_time_total: float

    @property
    def num_tokens(self) -> int:
        """Token count."""
        return len(self.token_latencies)

    def mean_latency(self) -> float:
        """Mean per-token latency in seconds."""
        return float(self.token_latencies.mean())

    def latency_percentile(self, q: float) -> float:
        """``q``-th percentile (0–100) of per-token latency in seconds.

        Routed through :meth:`repro.telemetry.Histogram.percentile` — one
        quantile implementation for the whole repo.
        """
        from ..telemetry.instruments import Histogram
        return Histogram.of(self.token_latencies).percentile(q)

    def p50_latency(self) -> float:
        """Median per-token latency in seconds."""
        return self.latency_percentile(50)

    def p95_latency(self) -> float:
        """95th-percentile per-token latency in seconds."""
        return self.latency_percentile(95)

    def p99_latency(self) -> float:
        """99th-percentile per-token latency in seconds."""
        return self.latency_percentile(99)

    def throughput_tokens_per_s(self) -> float:
        """Decoded tokens per wall-clock second."""
        total = self.token_latencies.sum()
        return self.num_tokens / total if total > 0 else 0.0


DECODE_MODES = ("cached", "reference")


@contextmanager
def serving_flags(model: MoETransformer):
    """Hot-loop model flags for a serving pass, restored on exit.

    Switches the model to eval mode and turns full-probability record
    copies off (routing records keep flowing) for the duration — the
    shared prologue of :class:`LiveDecodeEngine` and the
    continuous-batching engine in :mod:`repro.serving.scheduler`.
    """
    was_training = model.training
    moe_blocks = model._moe_blocks()
    previous_probs = [moe.record_probs for moe in moe_blocks]
    model.eval()
    model.set_record_probs(False)
    try:
        yield
    finally:
        model.train(was_training)
        for moe, previous in zip(moe_blocks, previous_probs):
            moe.record_probs = previous


class LiveEngineBase:
    """Shared setup of the live-model serving engines.

    Validates and applies the dispatch mode, optionally round-trips the
    expert weights through the int8 format, and binds/attaches a
    :mod:`repro.parallel` executor — identical knob semantics for
    :class:`LiveDecodeEngine` and :class:`~repro.serving.scheduler.
    ContinuousBatchingEngine`.
    """

    def __init__(self, model: MoETransformer, dispatch: str = "fused",
                 telemetry: Optional[Telemetry] = None,
                 monitor: Optional[RoutingHealthMonitor] = None,
                 executor=None, weight_format: str = "native",
                 events=None, prefetch=None, tracing=None, flight=None):
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {DISPATCH_MODES}, "
                             f"got {dispatch!r}")
        if weight_format not in WEIGHT_FORMATS:
            raise ValueError(f"weight_format must be one of "
                             f"{WEIGHT_FORMATS}, got {weight_format!r}")
        self.model = model
        self.model.set_dispatch_mode(dispatch)
        self.telemetry = telemetry
        self.monitor = monitor
        self.executor = executor
        self.weight_format = weight_format
        self.events = events
        # Request-scoped tracing + flight recording: accounting-only
        # sidecars, like the prefetcher below — they never touch the model,
        # so generated ids are bit-identical with them on or off.
        self.tracing = tracing
        self.flight = flight
        if tracing is not None:
            from ..telemetry.tracing import RequestTracer
            if not isinstance(tracing, RequestTracer):
                raise TypeError(f"tracing must be a RequestTracer, "
                                f"got {type(tracing).__name__}")
            tracing.bind(telemetry=telemetry, event_log=events)
        if flight is not None:
            from ..telemetry.flight import FlightRecorder
            if not isinstance(flight, FlightRecorder):
                raise TypeError(f"flight must be a FlightRecorder, "
                                f"got {type(flight).__name__}")
            if monitor is not None:
                flight.watch(monitor)
        self.quantization_report = None
        # Online re-placement: swap_placement() stages a new placement;
        # the serve loops apply it at their next iteration boundary.
        self._swap_lock = threading.Lock()
        self._pending_placement = None
        self.active_placement = monitor.placement \
            if monitor is not None else None
        # Predictive prefetch: an accounting-only sidecar fed with each
        # iteration's routing records.  It never touches the model, so
        # generated ids are bit-identical with prefetch on or off.
        self.prefetcher = None
        if prefetch is not None:
            from .prefetch import DecodePrefetcher, PrefetchConfig
            if not isinstance(prefetch, PrefetchConfig):
                raise TypeError(f"prefetch must be a PrefetchConfig, "
                                f"got {type(prefetch).__name__}")
            self.prefetcher = DecodePrefetcher(
                model.config, prefetch, telemetry=telemetry,
                event_log=events, placement=self.active_placement)
            self.prefetcher.bind(self)
        if weight_format == "int8":
            # Round-trip the expert weights through the int8 format so every
            # in-process path (single-token fast path, prefill) computes with
            # exactly the values an int8 deployment reconstructs — outputs
            # then match the executor's int8 shared-memory store bit for bit.
            self.quantization_report = quantize_expert_weights(model)
        if executor is not None:
            if not executor.bound:
                executor.bind(model, weight_format=weight_format)
            model.set_expert_executor(executor)

    def swap_placement(self, placement) -> None:
        """Stage a placement hot-swap (online re-placement hook).

        The swap is *deferred*: it takes effect at the engine's next
        iteration boundary (between decode steps), so whatever step is
        in flight finishes entirely under the old placement.  Decode is
        never stalled, and no request is evicted or re-prefilled —
        placement only changes where routing statistics are *scored*
        (and, in a real deployment, where expert weights live), not the
        model arithmetic.
        """
        with self._swap_lock:
            self._pending_placement = placement

    def apply_pending_placement(self):
        """Apply a staged swap, if any; returns the applied placement.

        Called by the serve loops at iteration boundaries.  Updates
        ``active_placement`` and the attached monitor (so locality
        gauges immediately score against the new assignment).
        """
        with self._swap_lock:
            placement = self._pending_placement
            self._pending_placement = None
        if placement is None:
            return None
        self.active_placement = placement
        if self.monitor is not None:
            self.monitor.swap_placement(placement)
        if self.prefetcher is not None:
            # Re-price fetches against the new holders (idempotent when
            # the prefetcher's own replication pass staged this swap).
            self.prefetcher.scheduler.set_placement(placement)
        return placement


class LiveDecodeEngine(LiveEngineBase):
    """Greedy autoregressive decoding on a live (tiny) :class:`MoETransformer`.

    Decoding runs in two explicit phases, the standard serving split:

    **prefill**
        One batched pass over the whole prompt.  In ``mode="cached"`` (the
        default) it populates per-layer :class:`~repro.nn.attention.KVCache`
        buffers through ``MoETransformer.forward_incremental``; the last
        position's logits yield the first generated token.

    **decode**
        One step per remaining token.  Cached mode feeds only the previous
        token through the incremental path (single-token fused-dispatch
        fast path, O(T) total); ``mode="reference"`` re-runs the full model
        over the full sequence every step (the seed's O(T²) loop, kept
        selectable for A/B equivalence runs — greedy ids are bit-identical
        across modes).  Both modes write into one preallocated
        ``(batch, prompt_len + num_tokens)`` ids buffer.

    The hot loop runs with gradients disabled, full-probability record
    copies off, and the fused MoE dispatch (``dispatch="fused"``, the
    default; ``"reference"`` stays selectable for A/B runs).  Routing
    records keep flowing in both modes, so the decode stream can still feed
    locality profiling and the cache simulators above.

    With ``telemetry=``, the prompt pass records a wall-clock
    ``serve.prefill`` span and feeds the ``serve.prefill_latency_s``
    histogram; every subsequent token records a ``serve.decode_token`` span
    and feeds ``serve.token_latency_s`` (mean/p50/p95/p99 in the summary
    table).  All spans land back to back on the ``decode`` track, so the
    per-phase sums tile the decode wall time.

    With ``monitor=`` (a :class:`~repro.telemetry.monitor.
    RoutingHealthMonitor`), every forward — the prefill and each decoded
    token — feeds the monitor's routing-health gauges from the model's
    routing records, so a long decode loop can be scraped live through
    :class:`~repro.telemetry.server.MetricsServer` while it runs.
    """

    def __init__(self, model: MoETransformer, dispatch: str = "fused",
                 mode: str = "cached",
                 telemetry: Optional[Telemetry] = None,
                 monitor: Optional[RoutingHealthMonitor] = None,
                 executor=None, weight_format: str = "native",
                 events=None, prefetch=None, tracing=None, flight=None):
        if mode not in DECODE_MODES:
            raise ValueError(f"mode must be one of {DECODE_MODES}, "
                             f"got {mode!r}")
        super().__init__(model, dispatch=dispatch, telemetry=telemetry,
                         monitor=monitor, executor=executor,
                         weight_format=weight_format, events=events,
                         prefetch=prefetch, tracing=tracing, flight=flight)
        self.mode = mode

    def decode(self, prompt_ids: np.ndarray, num_tokens: int,
               mode: Optional[str] = None) -> np.ndarray:
        """Greedily decode ``num_tokens`` continuations of ``prompt_ids``.

        ``prompt_ids`` is ``(batch, prompt_len)``; returns the generated ids
        as ``(batch, num_tokens)``.  The prompt plus generation must fit in
        the model's ``max_seq_len``.  ``mode`` overrides the engine default
        (``"cached"`` | ``"reference"``) for this call.
        """
        mode = self.mode if mode is None else mode
        if mode not in DECODE_MODES:
            raise ValueError(f"mode must be one of {DECODE_MODES}, "
                             f"got {mode!r}")
        prompt_ids = np.asarray(prompt_ids)
        if prompt_ids.ndim != 2:
            raise ValueError(f"expected (batch, prompt_len) prompt ids, "
                             f"got {prompt_ids.shape}")
        if num_tokens < 1:
            raise ValueError("num_tokens must be positive")
        max_len = self.model.config.max_seq_len
        batch, prompt_len = prompt_ids.shape
        total_len = prompt_len + num_tokens
        if total_len > max_len:
            raise ValueError(f"prompt ({prompt_len}) + generation "
                             f"({num_tokens}) exceeds max_seq_len {max_len}")
        # One ids buffer for the whole sequence, written in place — the
        # prompt up front, each generated token behind it (no per-token
        # concatenate-and-copy growth in either mode).
        ids = np.empty((batch, total_len), dtype=np.int64)
        ids[:, :prompt_len] = prompt_ids
        telemetry = self.telemetry
        monitor = self.monitor
        prefetcher = self.prefetcher
        tracing = self.tracing
        flight = self.flight
        num_experts = self.model.config.num_experts
        clock = telemetry.tracer.clock if telemetry is not None else None
        # One decode() call is one traced request: the whole batch advances
        # in lockstep, so each step is attributed to this stream with the
        # step's token count as its weight.  The ledger runs on a virtual
        # clock starting at 0 (wall-clock deltas from perf_counter), the
        # same convention the continuous-batching engine uses.
        steps = 0
        now_v = 0.0
        trace_ids: list = []
        token_latencies: list = []
        if tracing is not None:
            ledger = tracing.admit(now=0.0, prompt_len=batch * prompt_len)
            trace_ids = [ledger.trace_id]

        def observe_routing(kind: str) -> None:
            if monitor is None and prefetcher is None and tracing is None \
                    and flight is None:
                return
            records = self.model.routing_records()
            report = prefetcher.observe_records(records) \
                if prefetcher is not None else None
            if tracing is not None and report is not None:
                tracing.attribute_fetch(report)
            if flight is not None:
                counts = np.stack([record.access_counts(num_experts)
                                   for record in records]) if records \
                    else None
                flight.observe(step=steps, kind=kind, time=now_v,
                               counts=counts, active_slots=batch,
                               placement=self.active_placement,
                               trace_ids=trace_ids)
            # Monitor last: a latched anomaly auto-dumps the flight ring,
            # which must already hold this step's record.
            if monitor is not None:
                monitor.observe_records(records, num_experts=num_experts)

        with serving_flags(self.model), no_grad():
            self.apply_pending_placement()
            mark = clock.now() if clock is not None else 0.0
            t0 = time.perf_counter() if tracing is not None else 0.0
            if tracing is not None:
                tracing.set_step([(trace_ids[0], batch * prompt_len)])
            if mode == "cached":
                caches = self.model.new_kv_caches(batch,
                                                  max_len=total_len)
                logits = self.model.forward_incremental(
                    ids[:, :prompt_len], caches)
            else:
                logits = self.model(ids[:, :prompt_len])
            ids[:, prompt_len] = np.argmax(logits.data[:, -1, :], axis=-1)
            if tracing is not None:
                elapsed = time.perf_counter() - t0
                now_v += elapsed
                tracing.prefill(trace_ids, now_v - elapsed, elapsed)
            if telemetry is not None:
                now = clock.now()
                telemetry.record_span(
                    "serve.prefill", mark, now - mark,
                    category="prefill", track="decode", mode=mode,
                    prompt_len=prompt_len)
                telemetry.histogram(
                    "serve.prefill_latency_s").observe(now - mark)
                mark = now
            observe_routing("prefill")
            steps += 1
            for token in range(1, num_tokens):
                # Token steps are the decode loop's iteration boundary:
                # a staged placement swap lands here, between steps.
                self.apply_pending_placement()
                position = prompt_len + token
                t0 = time.perf_counter() if tracing is not None else 0.0
                if tracing is not None:
                    tracing.set_step([(trace_ids[0], batch)])
                if mode == "cached":
                    logits = self.model.forward_incremental(
                        ids[:, position - 1:position], caches)
                else:
                    logits = self.model(ids[:, :position])
                ids[:, position] = np.argmax(logits.data[:, -1, :],
                                             axis=-1)
                if tracing is not None:
                    elapsed = time.perf_counter() - t0
                    now_v += elapsed
                    token_latencies.append(elapsed)
                    tracing.decode_step(trace_ids, now_v - elapsed, elapsed)
                if telemetry is not None:
                    now = clock.now()
                    telemetry.record_span(
                        "serve.decode_token", mark, now - mark,
                        category="decode", track="decode", mode=mode,
                        token=token)
                    telemetry.histogram(
                        "serve.token_latency_s").observe(now - mark)
                    mark = now
                observe_routing("decode")
                steps += 1
        if tracing is not None:
            tracing.finish(trace_ids[0], now=now_v, reason="max_tokens",
                           token_latencies=token_latencies)
        return ids[:, prompt_len:]


class DecodeSimulator:
    """Simulate autoregressive decoding with an expert cache.

    Routing decisions come from a :class:`SyntheticRouter`'s popularity
    logits, sampled per token (Gumbel top-k), so the access stream has the
    same locality the profiling pass would measure.
    """

    def __init__(self, config: MoEModelConfig, router: SyntheticRouter,
                 cache: ExpertCache, serving: Optional[ServingConfig] = None,
                 seed: int = 0):
        self.config = config
        self.router = router
        self.cache = cache
        self.serving = serving or ServingConfig()
        self.seed = seed
        self.flops = FlopModel(config)
        self._expert_nbytes = self.serving.expert_fetch_nbytes(config)

    def _token_compute_time(self) -> float:
        """One token through every block (attention + top_k experts)."""
        device = self.serving.device
        per_block = self.flops.backbone_layer_time(
            device, 1.0, self.serving.context_len)
        per_block += self.config.top_k * self.flops.expert_time(device, 1.0)
        return per_block * self.config.num_layers + \
            self.flops.head_time(device, 1.0)

    def run(self, num_tokens: int) -> ServingMetrics:
        """Decode ``num_tokens`` tokens; returns the latency series."""
        if num_tokens < 1:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng(self.seed)
        logits = self.router.base_logits  # (L, E)
        temperature = self.router.regime.gate_temperature
        compute = self._token_compute_time()
        fetch = self.serving.fetch_time(self._expert_nbytes)

        latencies = np.empty(num_tokens)
        fetch_total = 0.0
        k = self.config.top_k
        for token in range(num_tokens):
            gumbel = rng.gumbel(size=logits.shape) * temperature
            scores = logits + gumbel
            chosen = np.argpartition(-scores, k - 1, axis=1)[:, :k]
            misses = 0
            for layer in range(self.config.num_layers):
                for expert in chosen[layer]:
                    if not self.cache.access((layer, int(expert))):
                        misses += 1
            latency = compute + misses * fetch
            fetch_total += misses * fetch
            latencies[token] = latency
        return ServingMetrics(token_latencies=latencies,
                              hit_rate=self.cache.stats.hit_rate,
                              evictions=self.cache.stats.evictions,
                              fetch_time_total=fetch_total)
