"""Speculative expert prefetching for offloaded decoding.

A decode step cannot know layer ``l+1``'s experts before computing layer
``l`` — but MoE routing has *temporal* locality on top of the global kind:
consecutive tokens often reuse experts.  Fiddler/MoE-Infinity exploit this
by speculatively prefetching the experts the previous token used, hiding
the fetch behind compute when the guess is right.

:class:`SpeculativePrefetcher` implements the previous-token policy and the
decode loop that charges a fetch only for (a) mispredicted experts and
(b) prefetches that could not be hidden behind the step's compute window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from ..models.config import MoEModelConfig
from ..routing.synthetic import SyntheticRouter
from ..runtime.flops import FlopModel
from .cache import ExpertCache, ExpertKey
from .engine import ServingConfig, ServingMetrics


@dataclass
class PrefetchStats:
    """Speculation counters: predictions, hits, wasted fetches."""
    predicted: int = 0
    correct: int = 0
    wasted: int = 0

    @property
    def accuracy(self) -> float:
        """Correct predictions over total predictions."""
        return self.correct / self.predicted if self.predicted else 0.0


class SpeculativePrefetcher:
    """Previous-token speculation over an expert cache."""

    def __init__(self, cache: ExpertCache):
        self.cache = cache
        self.stats = PrefetchStats()
        self._predicted: Set[ExpertKey] = set()

    def prefetch_for_next(self, used: Set[ExpertKey]) -> Set[ExpertKey]:
        """Speculatively load the experts the current token used.

        Returns the keys actually fetched (those not already resident).
        """
        fetched = set()
        for key in sorted(used):
            self.stats.predicted += 1
            if key not in self.cache:
                self.cache.access(key)  # loads it (counts as a miss)
                fetched.add(key)
        self._predicted = set(used)
        return fetched

    def score_token(self, needed: Set[ExpertKey]) -> Tuple[int, int]:
        """Account one token's demand against the last speculation.

        Returns ``(hits_from_prediction, residual_misses)`` where residual
        misses must be fetched synchronously.
        """
        correct = len(needed & self._predicted)
        self.stats.correct += correct
        self.stats.wasted += len(self._predicted - needed)
        residual = 0
        for key in sorted(needed):
            if not self.cache.access(key):
                residual += 1
        return correct, residual


class PrefetchingDecodeSimulator:
    """Decode loop with previous-token speculative prefetch.

    Speculative fetches overlap the next token's compute: up to
    ``compute_time / fetch_time`` fetches are free; the remainder and all
    mispredictions are synchronous.
    """

    def __init__(self, config: MoEModelConfig, router: SyntheticRouter,
                 cache: ExpertCache, serving: Optional[ServingConfig] = None,
                 seed: int = 0):
        self.config = config
        self.router = router
        self.cache = cache
        self.serving = serving or ServingConfig()
        self.seed = seed
        self.flops = FlopModel(config)
        self.prefetcher = SpeculativePrefetcher(cache)
        self._expert_nbytes = config.expert_nbytes()

    def _token_compute_time(self) -> float:
        device = self.serving.device
        per_block = self.flops.backbone_layer_time(
            device, 1.0, self.serving.context_len)
        per_block += self.config.top_k * self.flops.expert_time(device, 1.0)
        return per_block * self.config.num_layers + \
            self.flops.head_time(device, 1.0)

    def run(self, num_tokens: int) -> ServingMetrics:
        """Run to completion; returns metrics."""
        if num_tokens < 1:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng(self.seed)
        logits = self.router.base_logits
        temperature = self.router.regime.gate_temperature
        compute = self._token_compute_time()
        fetch = self.serving.fetch_time(self._expert_nbytes)
        hidden_budget = int(compute // fetch) if fetch > 0 else 0
        k = self.config.top_k

        latencies = np.empty(num_tokens)
        fetch_total = 0.0
        pending_prefetches = 0
        for token in range(num_tokens):
            gumbel = rng.gumbel(size=logits.shape) * temperature
            chosen = np.argpartition(-(logits + gumbel), k - 1, axis=1)[:, :k]
            needed = {(layer, int(e))
                      for layer in range(self.config.num_layers)
                      for e in chosen[layer]}
            # pay for speculative fetches that did not fit the compute window
            overflow = max(pending_prefetches - hidden_budget, 0)
            _, residual = self.prefetcher.score_token(needed)
            latency = compute + (residual + overflow) * fetch
            fetch_total += (residual + overflow) * fetch
            latencies[token] = latency
            pending_prefetches = len(
                self.prefetcher.prefetch_for_next(needed))
        return ServingMetrics(token_latencies=latencies,
                              hit_rate=self.cache.stats.hit_rate,
                              evictions=self.cache.stats.evictions,
                              fetch_time_total=fetch_total)
