"""Predictive expert prefetching: learned speculation + overlapped fetches.

A decode step cannot know layer ``l+1``'s experts before computing layer
``l`` — but MoE routing has *temporal* locality on top of the global kind:
consecutive tokens often reuse experts, and which experts follow which is
itself predictable.  Fiddler/MoE-Infinity exploit the first fact by
speculatively prefetching the experts the previous token used; "Fast MoE
Inference via Predictive Prefetching and Expert Replication" goes further
and *learns* the next-expert distribution, replicating persistently-hot
experts so their fetches become local.

This module carries both generations:

* :class:`SpeculativePrefetcher` + :class:`PrefetchingDecodeSimulator` —
  the original previous-token policy over an :class:`ExpertCache`
  (kept as the baseline and for A/B tests).
* :class:`PreviousTokenPredictor` / :class:`TransitionPredictor` /
  :class:`OraclePredictor` — pluggable next-step expert predictors.  The
  transition predictor accumulates per-layer expert→expert transition
  counts online from gate history and falls back to the previous-token
  policy until a row has evidence; the oracle reads a prerecorded stream
  and bounds what any predictor could achieve.
* :class:`OverlappedFetchScheduler` — issues predicted-expert fetches
  ahead of the step that needs them and charges only the *un-hidden*
  remainder (Comet-style fine-grained overlap: speculative fetch time up
  to the step's compute window is free; overflow and mispredictions are
  synchronous).  Fetches are priced per expert — PCIe for locally-held
  experts, plus the holder's cluster link when the active placement puts
  the expert on a remote worker.
* :class:`DecodePrefetcher` — the live-engine sidecar
  (``LiveDecodeEngine(prefetch=...)`` / ``ContinuousBatchingEngine(
  prefetch=...)``): feeds the scheduler from each step's routing records,
  emits ``serve.prefetch_*`` telemetry, and — via a PR-8
  :class:`~repro.placement.replan.RoutingWindow` — periodically promotes
  persistently-hot experts onto the local worker through
  :class:`~repro.placement.replication.ReplicationStrategy` and the
  engines' ``swap_placement`` hot-swap hooks.  The sidecar only *reads*
  routing records; greedy token ids are bit-identical with prefetch on
  and off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..models.config import MoEModelConfig
from ..routing.synthetic import SyntheticRouter
from ..runtime.flops import FlopModel
from .cache import ExpertCache, ExpertKey, safe_ratio
from .engine import ServingConfig, ServingMetrics

#: Predictors usable in the live path; ``"oracle"`` additionally exists for
#: offline streams (it needs the future) and is simulator-only.
PREDICTORS = ("transition", "previous")

#: Cache policies a live prefetcher may use (``belady`` needs a lookahead
#: sequence, which only offline replays have).
LIVE_CACHE_POLICIES = ("lru", "lfu")


@dataclass
class PrefetchStats:
    """Speculation counters: predictions, hits, wasted/hidden/unhidden work.

    Byte counters are cumulative over the run; ``hidden_bytes`` were
    overlapped under compute windows, ``unhidden_bytes`` (sync misses plus
    prefetch overflow) stalled a decode step, and ``remote_bytes`` also
    crossed a cluster link because the active placement held the expert on
    a non-local worker.
    """
    predicted: int = 0
    correct: int = 0
    wasted: int = 0
    steps: int = 0
    sync_fetches: int = 0
    prefetch_fetches: int = 0
    hidden_bytes: float = 0.0
    unhidden_bytes: float = 0.0
    remote_bytes: float = 0.0

    @property
    def accuracy(self) -> float:
        """Correct predictions over total predictions (0.0 with none)."""
        return safe_ratio(self.correct, self.predicted)

    @property
    def unhidden_bytes_per_step(self) -> float:
        """Mean un-hidden fetch bytes charged per decode step."""
        return safe_ratio(self.unhidden_bytes, self.steps)


# --------------------------------------------------------------------- #
# next-step expert predictors
# --------------------------------------------------------------------- #
ExpertSets = List[Set[int]]  # one set of expert ids per MoE layer


class ExpertPredictor:
    """Interface: predict the next step's per-layer expert sets."""

    def update(self, previous: ExpertSets, current: ExpertSets) -> None:
        """Learn from one observed transition (previous step → current)."""

    def predict(self, current: ExpertSets) -> ExpertSets:
        """Per-layer expert sets expected at the *next* step."""
        raise NotImplementedError


class PreviousTokenPredictor(ExpertPredictor):
    """The Fiddler baseline: the next token reuses the current experts."""

    def update(self, previous: ExpertSets, current: ExpertSets) -> None:
        pass  # stateless

    def predict(self, current: ExpertSets) -> ExpertSets:
        return [set(layer) for layer in current]


class TransitionPredictor(ExpertPredictor):
    """Learned next-step prediction from per-layer transition counts.

    ``counts[l, p, c]`` accumulates how often expert ``c`` was routed at
    a step that followed one routing expert ``p`` on layer ``l`` — gate
    history digested online, no extra model.  Prediction sums the rows of
    the currently-active experts and takes the top scorers (as many as
    are currently active, so the prediction budget matches the
    previous-token baseline exactly).  Ties break toward the lowest
    expert id; experts with zero evidence are filled from the
    previous-token fallback, so a cold-start transition predictor *is*
    the baseline until it has seen traffic.
    """

    def __init__(self, num_layers: int, num_experts: int):
        if num_layers < 1 or num_experts < 1:
            raise ValueError("num_layers and num_experts must be positive")
        self.num_layers = num_layers
        self.num_experts = num_experts
        self.counts = np.zeros((num_layers, num_experts, num_experts))

    def update(self, previous: ExpertSets, current: ExpertSets) -> None:
        for layer, (prev, cur) in enumerate(zip(previous, current)):
            if prev and cur:
                self.counts[layer][np.ix_(sorted(prev), sorted(cur))] += 1.0

    def predict(self, current: ExpertSets) -> ExpertSets:
        out: ExpertSets = []
        for layer, cur in enumerate(current):
            budget = len(cur)
            if budget == 0:
                out.append(set())
                continue
            row = self.counts[layer][sorted(cur)].sum(axis=0)
            order = np.argsort(-row, kind="stable")  # ties: lowest id first
            picked = [int(e) for e in order[:budget] if row[e] > 0]
            if len(picked) < budget:  # cold start: previous-token fallback
                for e in sorted(cur):
                    if e not in picked:
                        picked.append(e)
                    if len(picked) == budget:
                        break
            out.append(set(picked))
        return out


class OraclePredictor(ExpertPredictor):
    """Offline upper bound: reads the next step from a prerecorded stream.

    Only usable when the access stream is known ahead of time (the
    benchmark's replay); the live engines reject it.
    """

    def __init__(self, stream: Sequence[ExpertSets]):
        self.stream = [list(map(set, step)) for step in stream]
        self._calls = 0

    def update(self, previous: ExpertSets, current: ExpertSets) -> None:
        pass

    def predict(self, current: ExpertSets) -> ExpertSets:
        self._calls += 1
        if self._calls < len(self.stream):
            return [set(layer) for layer in self.stream[self._calls]]
        return [set() for _ in current]


def make_predictor(name: str, config: MoEModelConfig) -> ExpertPredictor:
    """Build a live-path predictor by name (one of :data:`PREDICTORS`)."""
    if name == "transition":
        return TransitionPredictor(config.num_layers, config.num_experts)
    if name == "previous":
        return PreviousTokenPredictor()
    raise ValueError(f"predictor must be one of {PREDICTORS}, got {name!r}")


# --------------------------------------------------------------------- #
# the previous-token baseline (PR-1 era API, kept for A/B tests)
# --------------------------------------------------------------------- #
class SpeculativePrefetcher:
    """Previous-token speculation over an expert cache."""

    def __init__(self, cache: ExpertCache):
        self.cache = cache
        self.stats = PrefetchStats()
        self._predicted: Set[ExpertKey] = set()

    def prefetch_for_next(self, used: Set[ExpertKey]) -> Set[ExpertKey]:
        """Speculatively load the experts the current token used.

        Returns the keys actually fetched (those not already resident).
        """
        fetched = set()
        for key in sorted(used):
            self.stats.predicted += 1
            if key not in self.cache:
                self.cache.access(key)  # loads it (counts as a miss)
                fetched.add(key)
        self._predicted = set(used)
        return fetched

    def score_token(self, needed: Set[ExpertKey]) -> Tuple[int, int]:
        """Account one token's demand against the last speculation.

        Returns ``(hits_from_prediction, residual_misses)`` where residual
        misses must be fetched synchronously.
        """
        correct = len(needed & self._predicted)
        self.stats.correct += correct
        self.stats.wasted += len(self._predicted - needed)
        residual = 0
        for key in sorted(needed):
            if not self.cache.access(key):
                residual += 1
        return correct, residual


class PrefetchingDecodeSimulator:
    """Decode loop with previous-token speculative prefetch.

    Speculative fetches overlap the next token's compute: up to
    ``compute_time / fetch_time`` fetches are free; the remainder and all
    mispredictions are synchronous.
    """

    def __init__(self, config: MoEModelConfig, router: SyntheticRouter,
                 cache: ExpertCache, serving: Optional[ServingConfig] = None,
                 seed: int = 0):
        self.config = config
        self.router = router
        self.cache = cache
        self.serving = serving or ServingConfig()
        self.seed = seed
        self.flops = FlopModel(config)
        self.prefetcher = SpeculativePrefetcher(cache)
        self._expert_nbytes = config.expert_nbytes()

    def _token_compute_time(self) -> float:
        device = self.serving.device
        per_block = self.flops.backbone_layer_time(
            device, 1.0, self.serving.context_len)
        per_block += self.config.top_k * self.flops.expert_time(device, 1.0)
        return per_block * self.config.num_layers + \
            self.flops.head_time(device, 1.0)

    def run(self, num_tokens: int) -> ServingMetrics:
        """Run to completion; returns metrics."""
        if num_tokens < 1:
            raise ValueError("num_tokens must be positive")
        rng = np.random.default_rng(self.seed)
        logits = self.router.base_logits
        temperature = self.router.regime.gate_temperature
        compute = self._token_compute_time()
        fetch = self.serving.fetch_time(self._expert_nbytes)
        hidden_budget = int(compute // fetch) if fetch > 0 else 0
        k = self.config.top_k

        latencies = np.empty(num_tokens)
        fetch_total = 0.0
        pending_prefetches = 0
        for token in range(num_tokens):
            gumbel = rng.gumbel(size=logits.shape) * temperature
            chosen = np.argpartition(-(logits + gumbel), k - 1, axis=1)[:, :k]
            needed = {(layer, int(e))
                      for layer in range(self.config.num_layers)
                      for e in chosen[layer]}
            # pay for speculative fetches that did not fit the compute window
            overflow = max(pending_prefetches - hidden_budget, 0)
            _, residual = self.prefetcher.score_token(needed)
            latency = compute + (residual + overflow) * fetch
            fetch_total += (residual + overflow) * fetch
            latencies[token] = latency
            pending_prefetches = len(
                self.prefetcher.prefetch_for_next(needed))
        return ServingMetrics(token_latencies=latencies,
                              hit_rate=self.cache.stats.hit_rate,
                              evictions=self.cache.stats.evictions,
                              fetch_time_total=fetch_total)


# --------------------------------------------------------------------- #
# overlapped fetch scheduling
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StepFetchReport:
    """One decode step's fetch accounting under the overlap model."""

    tokens: int
    compute_s: float
    latency_s: float
    predicted: int
    correct: int
    sync_fetches: int
    prefetch_fetches: int
    hidden_bytes: float
    unhidden_bytes: float
    remote_bytes: float


class OverlappedFetchScheduler:
    """Issue predicted-expert fetches under the step's compute window.

    The overlap accounting mirrors what
    :class:`~repro.runtime.overlap.OverlappedMasterWorkerEngine` models for
    training exchanges: work that fits under compute is free, only the
    exceeding tail stalls.  Per step:

    1. last step's speculative fetch time up to the compute window is
       *hidden*; the overflow is charged to this step's latency (bytes
       split proportionally into ``hidden_bytes`` / ``unhidden_bytes``);
    2. every needed expert is accessed in the cache — misses fetch
       synchronously (fully un-hidden);
    3. the predictor learns the observed transition, predicts the next
       step, and the scheduler issues speculative fetches for predicted
       non-resident experts (to be scored at the next step).

    A fetch is priced from the expert's *holder*: PCIe host→device
    (:meth:`ServingConfig.fetch_time`) when the active placement holds a
    copy on ``local_worker`` (or no placement is set), plus the
    best-bandwidth holder's master link (the :mod:`repro.comm` /
    :mod:`repro.cluster` model) when every copy is remote — which is
    exactly what hot-expert replication removes.

    ``price_config`` decouples pricing from the (tiny) live model:
    passing ``mixtral_8x7b_sim()`` makes the byte/time accounting reflect
    a deployment-scale model while a CPU-sized model produces the routing
    stream.  ``predictor=None`` disables speculation entirely (every miss
    is synchronous) — the "off" baseline.
    """

    def __init__(self, config: MoEModelConfig,
                 predictor: Optional[ExpertPredictor],
                 cache: ExpertCache,
                 serving: Optional[ServingConfig] = None,
                 placement=None, topology=None, local_worker: int = 0,
                 price_config: Optional[MoEModelConfig] = None):
        self.config = config
        self.predictor = predictor
        self.cache = cache
        self.serving = serving or ServingConfig()
        self.placement = placement
        self.topology = topology
        self.local_worker = local_worker
        self.price_config = price_config or config
        self.flops = FlopModel(self.price_config)
        self.stats = PrefetchStats()
        self._fetch_nbytes = self.serving.expert_fetch_nbytes(
            self.price_config)
        self._token_compute = self._token_compute_time()
        self._predicted: Set[ExpertKey] = set()
        self._pending_time = 0.0
        self._pending_bytes = 0.0
        self._prev_sets: Optional[ExpertSets] = None

    def set_placement(self, placement) -> None:
        """Swap the placement fetches are priced against (hot-swap hook)."""
        self.placement = placement

    def _token_compute_time(self) -> float:
        """One token through every block at the pricing config's scale."""
        device = self.serving.device
        per_block = self.flops.backbone_layer_time(
            device, 1.0, self.serving.context_len)
        per_block += self.price_config.top_k * \
            self.flops.expert_time(device, 1.0)
        return per_block * self.price_config.num_layers + \
            self.flops.head_time(device, 1.0)

    def _holders(self, key: ExpertKey) -> List[int]:
        layer, expert = key
        placement = self.placement
        if hasattr(placement, "holders"):  # ReplicatedPlacement
            return placement.holders(layer, expert)
        return [placement.worker_of(layer, expert)]

    def _fetch_cost(self, key: ExpertKey) -> Tuple[float, float, bool]:
        """``(seconds, bytes, crossed_cluster_link)`` for one expert fetch."""
        nbytes = float(self._fetch_nbytes)
        seconds = self.serving.fetch_time(nbytes)
        if self.placement is None or self.topology is None:
            return seconds, nbytes, False
        holders = self._holders(key)
        if self.local_worker in holders:
            return seconds, nbytes, False
        # Remote: the copy travels the best holder's master link first.
        link = max((self.topology.master_link(worker) for worker in holders),
                   key=lambda l: l.bandwidth_bytes_per_s)
        return seconds + link.transfer_time(nbytes), nbytes, True

    def step(self, needed_sets: ExpertSets, tokens: int = 1
             ) -> StepFetchReport:
        """Account one decode step's expert demand; speculate for the next.

        ``needed_sets`` holds the expert ids each MoE layer routed to this
        step; ``tokens`` scales the compute window (a batched ragged step
        hides more fetch time than a single-token one).
        """
        stats = self.stats
        stats.steps += 1
        remote_before = stats.remote_bytes
        needed_keys = {(layer, int(e))
                       for layer, layer_set in enumerate(needed_sets)
                       for e in layer_set}
        predicted = self._predicted
        correct = len(needed_keys & predicted)
        stats.correct += correct
        stats.wasted += len(predicted - needed_keys)

        compute = self._token_compute * max(int(tokens), 1)
        # 1. last step's speculation overlaps this step's compute window
        hidden_time = min(self._pending_time, compute)
        overflow_time = self._pending_time - hidden_time
        hidden_fraction = safe_ratio(hidden_time, self._pending_time)
        hidden_bytes = self._pending_bytes * hidden_fraction
        overflow_bytes = self._pending_bytes - hidden_bytes

        # 2. demand accesses; residual misses fetch synchronously
        sync_time = 0.0
        sync_bytes = 0.0
        sync_fetches = 0
        for key in sorted(needed_keys):
            if not self.cache.access(key):
                seconds, nbytes, remote = self._fetch_cost(key)
                sync_time += seconds
                sync_bytes += nbytes
                sync_fetches += 1
                if remote:
                    stats.remote_bytes += nbytes
        stats.sync_fetches += sync_fetches
        stats.hidden_bytes += hidden_bytes
        stats.unhidden_bytes += overflow_bytes + sync_bytes
        latency = compute + overflow_time + sync_time

        # 3. learn the transition, speculate for the next step
        predicted_count = 0
        prefetch_fetches = 0
        pending_time = 0.0
        pending_bytes = 0.0
        if self.predictor is not None:
            if self._prev_sets is not None:
                self.predictor.update(self._prev_sets, needed_sets)
            self._prev_sets = [set(layer) for layer in needed_sets]
            next_sets = self.predictor.predict(needed_sets)
            self._predicted = {(layer, int(e))
                               for layer, layer_set in enumerate(next_sets)
                               for e in layer_set}
            predicted_count = len(self._predicted)
            stats.predicted += predicted_count
            for key in sorted(self._predicted):
                if key not in self.cache:
                    self.cache.access(key)  # loads it (counts as a miss)
                    seconds, nbytes, remote = self._fetch_cost(key)
                    pending_time += seconds
                    pending_bytes += nbytes
                    prefetch_fetches += 1
                    if remote:
                        stats.remote_bytes += nbytes
            stats.prefetch_fetches += prefetch_fetches
        self._pending_time = pending_time
        self._pending_bytes = pending_bytes

        return StepFetchReport(
            tokens=int(tokens), compute_s=compute, latency_s=latency,
            predicted=predicted_count, correct=correct,
            sync_fetches=sync_fetches, prefetch_fetches=prefetch_fetches,
            hidden_bytes=hidden_bytes,
            unhidden_bytes=overflow_bytes + sync_bytes,
            remote_bytes=stats.remote_bytes - remote_before)


# --------------------------------------------------------------------- #
# offline streams (benchmark + oracle inputs)
# --------------------------------------------------------------------- #
def sample_decode_stream(config: MoEModelConfig, router: SyntheticRouter,
                         num_steps: int, seed: int = 0
                         ) -> List[ExpertSets]:
    """Per-step per-layer expert sets, sampled like the decode simulators.

    One token per step, Gumbel top-k over the router's popularity logits —
    the same access process :class:`~repro.serving.engine.DecodeSimulator`
    replays, materialized up front so several policies (and the belady /
    oracle bounds) can consume the identical stream.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be positive")
    rng = np.random.default_rng(seed)
    logits = router.base_logits
    temperature = router.regime.gate_temperature
    k = config.top_k
    stream: List[ExpertSets] = []
    for _ in range(num_steps):
        gumbel = rng.gumbel(size=logits.shape) * temperature
        chosen = np.argpartition(-(logits + gumbel), k - 1, axis=1)[:, :k]
        stream.append([set(map(int, chosen[layer]))
                       for layer in range(config.num_layers)])
    return stream


def markov_decode_stream(config: MoEModelConfig, num_steps: int,
                         advance_prob: float = 0.55,
                         resample_prob: float = 0.05,
                         seed: int = 0) -> List[ExpertSets]:
    """A decode stream with *gate-history* structure, not just popularity.

    Real decode traces are temporally structured two ways: consecutive
    tokens often reuse experts (what the previous-token policy exploits),
    and *which* experts follow which is itself predictable from gate
    history (what the learned predictors in "Fast MoE Inference via
    Predictive Prefetching and Expert Replication" exploit).  This sampler
    models the second kind explicitly: each layer carries a hidden
    transition cycle (a fixed random single-cycle permutation of its
    experts), and per step the layer's active expert set either *advances*
    along the cycle (probability ``advance_prob``), resamples uniformly
    (``resample_prob`` — routing noise), or stays put.

    A previous-token policy tops out at the stay probability; a transition
    predictor can learn the cycle and anticipate the advances — the regime
    the prefetch benchmark measures.  :func:`sample_decode_stream` remains
    the i.i.d.-popularity counterpart.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be positive")
    if advance_prob < 0 or resample_prob < 0 or \
            advance_prob + resample_prob > 1:
        raise ValueError("advance_prob/resample_prob must be non-negative "
                         "and sum to at most 1")
    rng = np.random.default_rng(seed)
    num_layers, num_experts, k = (config.num_layers, config.num_experts,
                                  config.top_k)
    successor = np.empty((num_layers, num_experts), dtype=np.int64)
    for layer in range(num_layers):
        order = rng.permutation(num_experts)
        successor[layer][order] = np.roll(order, -1)  # one full cycle
    state = [set(map(int, rng.choice(num_experts, size=k, replace=False)))
             for _ in range(num_layers)]
    stream: List[ExpertSets] = []
    for _ in range(num_steps):
        for layer in range(num_layers):
            u = rng.random()
            if u < advance_prob:
                state[layer] = {int(successor[layer][e])
                                for e in state[layer]}
            elif u < advance_prob + resample_prob:
                state[layer] = set(map(int, rng.choice(
                    num_experts, size=k, replace=False)))
        stream.append([set(layer_set) for layer_set in state])
    return stream


def stream_lookahead(stream: Sequence[ExpertSets]) -> List[ExpertKey]:
    """Flatten a stream into the exact access order :func:`replay_stream`
    uses — the belady policy's ``lookahead`` input."""
    return [(layer, int(e))
            for step in stream
            for layer, e in sorted({(l, int(ex))
                                    for l, layer_set in enumerate(step)
                                    for ex in layer_set})]


def replay_stream(stream: Sequence[ExpertSets],
                  scheduler: OverlappedFetchScheduler) -> ServingMetrics:
    """Replay a prerecorded stream through a scheduler; returns metrics."""
    latencies = np.empty(len(stream))
    fetch_total = 0.0
    for step, needed_sets in enumerate(stream):
        report = scheduler.step(needed_sets)
        latencies[step] = report.latency_s
        fetch_total += report.latency_s - report.compute_s
    return ServingMetrics(token_latencies=latencies,
                          hit_rate=scheduler.cache.stats.hit_rate,
                          evictions=scheduler.cache.stats.evictions,
                          fetch_time_total=fetch_total)


# --------------------------------------------------------------------- #
# the live-engine sidecar
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PrefetchConfig:
    """Knobs of the live-path predictive prefetcher (see ``docs/API.md``).

    ``predictor`` selects the speculation policy (:data:`PREDICTORS`);
    ``cache_capacity`` defaults to half the model's experts;
    ``model_config`` reprices bytes/times at a deployment scale (default:
    the engine's own config); ``topology`` + the engine's active placement
    enable remote-fetch pricing and — with ``replication_budget > 0`` —
    online promotion of persistently-hot experts onto ``local_worker``
    every ``replication_interval`` observed steps, using the last
    ``window_size`` steps of routing counts.
    """

    predictor: str = "transition"
    cache_capacity: Optional[int] = None
    cache_policy: str = "lru"
    serving: Optional[ServingConfig] = None
    model_config: Optional[MoEModelConfig] = None
    topology: Any = None
    local_worker: int = 0
    replication_budget: int = 0
    replication_interval: int = 32
    window_size: int = 64

    def __post_init__(self) -> None:
        if self.predictor not in PREDICTORS:
            raise ValueError(f"predictor must be one of {PREDICTORS}, "
                             f"got {self.predictor!r}")
        if self.cache_policy not in LIVE_CACHE_POLICIES:
            raise ValueError(f"cache_policy must be one of "
                             f"{LIVE_CACHE_POLICIES} in the live path, "
                             f"got {self.cache_policy!r}")
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ValueError("cache_capacity must be positive")
        if self.replication_budget < 0:
            raise ValueError("replication_budget must be non-negative")
        if self.replication_interval < 1:
            raise ValueError("replication_interval must be positive")
        if self.window_size < 1:
            raise ValueError("window_size must be positive")


class DecodePrefetcher:
    """Accounting-only prefetch + replication sidecar for the live engines.

    Attached through ``prefetch=`` on
    :class:`~repro.serving.engine.LiveDecodeEngine` and
    :class:`~repro.serving.scheduler.ContinuousBatchingEngine`.  Every
    engine iteration feeds :meth:`observe_records` with that forward's
    routing records; the sidecar never touches the model, the KV caches,
    or the ids buffer, so generated tokens are bit-identical with the
    sidecar on or off.

    Telemetry (when the engine carries a registry): the
    ``serve.prefetch_accuracy`` / ``serve.prefetch_hit_rate`` /
    ``serve.prefetch_replicas`` gauges and the
    ``serve.prefetch_{predicted,correct,hidden_bytes,unhidden_bytes,
    remote_bytes}`` counters.  A replication pass that promotes experts
    emits one ``prefetch_replication`` event into the engine's event log.
    """

    def __init__(self, config: MoEModelConfig, prefetch: PrefetchConfig,
                 telemetry=None, event_log=None, placement=None):
        self.config = config
        self.prefetch = prefetch
        self.telemetry = telemetry
        self.event_log = event_log
        capacity = prefetch.cache_capacity
        if capacity is None:
            capacity = max(config.total_experts // 2, 1)
        self.scheduler = OverlappedFetchScheduler(
            config,
            predictor=make_predictor(prefetch.predictor, config),
            cache=ExpertCache(capacity, policy=prefetch.cache_policy),
            serving=prefetch.serving,
            placement=placement,
            topology=prefetch.topology,
            local_worker=prefetch.local_worker,
            price_config=prefetch.model_config)
        self._targets: List = []
        self._steps = 0
        self._window = None
        if prefetch.replication_budget > 0:
            from ..placement.replan import RoutingWindow
            self._window = RoutingWindow(prefetch.window_size)

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> PrefetchStats:
        """The scheduler's cumulative speculation statistics."""
        return self.scheduler.stats

    @property
    def cache(self) -> ExpertCache:
        """The modeled device-resident expert cache."""
        return self.scheduler.cache

    @property
    def placement(self):
        """The placement fetches are currently priced against."""
        return self.scheduler.placement

    def bind(self, target) -> None:
        """Register a ``swap_placement``-capable replication target."""
        self._targets.append(target)

    # ------------------------------------------------------------------ #
    def observe_records(self, records: Sequence
                        ) -> Optional[StepFetchReport]:
        """Digest one engine iteration's routing records.

        Returns the step's :class:`StepFetchReport` (None for an empty
        record list).
        """
        records = list(records)
        if not records:
            return None
        needed = [set(map(int, np.unique(record.expert_indices)))
                  for record in records]
        tokens = records[0].num_tokens
        report = self.scheduler.step(needed, tokens=tokens)
        self._steps += 1

        telemetry = self.telemetry
        if telemetry is not None:
            stats = self.scheduler.stats
            telemetry.gauge("serve.prefetch_accuracy").set(stats.accuracy)
            telemetry.gauge("serve.prefetch_hit_rate").set(
                self.cache.stats.hit_rate)
            telemetry.counter("serve.prefetch_predicted").add(
                float(report.predicted))
            telemetry.counter("serve.prefetch_correct").add(
                float(report.correct))
            telemetry.counter("serve.prefetch_hidden_bytes").add(
                report.hidden_bytes)
            telemetry.counter("serve.prefetch_unhidden_bytes").add(
                report.unhidden_bytes)
            telemetry.counter("serve.prefetch_remote_bytes").add(
                report.remote_bytes)

        if self._window is not None:
            num_experts = self.config.num_experts
            counts = np.stack([record.access_counts(num_experts)
                               for record in records])
            self._window.observe(counts)
            if self._steps % self.prefetch.replication_interval == 0:
                self._maybe_replicate()
        return report

    # ------------------------------------------------------------------ #
    def _maybe_replicate(self) -> None:
        """Promote persistently-hot experts onto the local worker.

        Freezes the current primary assignment and lets
        :class:`~repro.placement.replication.ReplicationStrategy` spend
        ``replication_budget`` spare slots on ``local_worker`` against
        the routing window — replicas land only where they reduce the
        windowed bottleneck, and the resulting
        :class:`~repro.placement.replication.ReplicatedPlacement` is
        hot-swapped into every bound engine (and, through them, the
        monitor) at the next iteration boundary.
        """
        from ..placement.replication import (FrozenPlacementStrategy,
                                             ReplicatedPlacement,
                                             ReplicationStrategy)
        prefetch = self.prefetch
        placement = self.scheduler.placement
        topology = prefetch.topology
        if placement is None or topology is None or len(self._window) == 0:
            return
        primary = placement.primary \
            if isinstance(placement, ReplicatedPlacement) else placement
        loads = primary.worker_loads(topology.num_workers)
        capacities = [int(load) for load in loads]
        capacities[prefetch.local_worker] += prefetch.replication_budget
        strategy = ReplicationStrategy(
            base=FrozenPlacementStrategy(primary),
            max_replicas=prefetch.replication_budget)
        report = strategy.solve_from_window(self.config, topology,
                                            self._window,
                                            capacities=capacities)
        replicated = report.placement
        old_replicas = placement.replicas \
            if isinstance(placement, ReplicatedPlacement) else {}
        if replicated.num_replicas == 0 or replicated.replicas == old_replicas:
            return
        # Price the fetches against the new holders immediately (the
        # sidecar is accounting-only); engines apply the swap at their
        # next iteration boundary through the standard staged hook.
        self.scheduler.set_placement(replicated)
        for target in self._targets:
            target.swap_placement(replicated)
        if self.telemetry is not None:
            self.telemetry.gauge("serve.prefetch_replicas").set(
                float(replicated.num_replicas))
        if self.event_log is not None:
            from ..telemetry.events import MonitorEvent
            keys = sorted(replicated.replicas)
            self.event_log.emit(MonitorEvent(
                kind="prefetch_replication", severity="info",
                step=self._steps, time_unix=time.time(),
                message=f"replicated {replicated.num_replicas} hot experts "
                        f"onto worker {prefetch.local_worker}",
                labels={"replicas": replicated.num_replicas,
                        "experts": [list(key) for key in keys],
                        "improvement": report.improvement,
                        "bytes": float(replicated.num_replicas
                                       * self.config.expert_nbytes())}))
