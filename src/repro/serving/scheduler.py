"""Continuous-batching live serving: slot-pool KV cache + admission loop.

The :class:`~repro.serving.engine.LiveDecodeEngine` serves one request at a
time; between requests the model idles while tokens queue up.  Production
MoE serving (vLLM-style continuous batching) instead keeps a fixed pool of
KV-cache *slots* and interleaves requests: newly arrived requests are
admitted into free slots mid-flight, every engine iteration runs one
batched decode step over all active slots, and a request that finishes
(EOS or token budget) releases its slot to the next waiting request — no
barrier at batch boundaries, no idle slots while work is queued.

Three pieces live here:

* :class:`SlotPool` — the free-list over cache rows, resetting a row's
  per-slot cursors (:meth:`repro.nn.attention.KVCache.reset`) on acquire
  so a re-issued slot can never leak the previous occupant's KV entries.
* :class:`ContinuousBatchingEngine` — the admit → prefill → decode → evict
  loop over ``MoETransformer.forward_slots`` (ragged per-slot attention).
  Single-request output is greedy-bit-identical to
  ``LiveDecodeEngine.decode(mode="cached")`` — the equivalence gate in
  ``benchmarks/bench_serving_batch.py`` and ``tests/serving``.
* :class:`ContinuousServingMetrics` — per-request latency / TTFT /
  queueing percentiles (through :meth:`repro.telemetry.Histogram.
  percentile`) and SLO-conditioned goodput.

Time is a *virtual clock*: ``now`` advances by the measured wall time of
each engine iteration, and fast-forwards across idle gaps to the next
arrival instead of sleeping.  Queueing delay and TTFT are therefore
honest — a request that arrives while the engine is busy waits for real
compute — while a quiet stream doesn't stall the benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.transformer import MoETransformer
from ..nn.attention import KVCache
from ..nn.tensor import no_grad
from ..telemetry import Telemetry
from ..telemetry.events import EventLog, MonitorEvent
from ..telemetry.instruments import Histogram
from ..telemetry.monitor import RoutingHealthMonitor
from .batching import Request, RequestOutcome
from .engine import LiveEngineBase, serving_flags

ADMISSION_POLICIES = ("fcfs", "shortest")


class SlotPool:
    """Free-list over the rows of a shared KV-cache set.

    Slots are handed out lowest-index first (deterministic — tests and
    event logs can predict placements) and a slot's per-layer cursors are
    rewound on :meth:`acquire`, so the next occupant starts from position
    zero and the length-aware mask in ``forward_slots`` can never see the
    previous request's stale entries.
    """

    def __init__(self, caches: Sequence[KVCache], max_slots: int):
        if max_slots < 1:
            raise ValueError("max_slots must be positive")
        if any(cache.batch != max_slots for cache in caches):
            raise ValueError(f"every cache must have batch == max_slots "
                             f"({max_slots})")
        self.caches = list(caches)
        self.max_slots = max_slots
        self._free = list(range(max_slots))  # kept sorted, lowest first

    @property
    def free_count(self) -> int:
        """Number of unoccupied slots."""
        return len(self._free)

    @property
    def active_count(self) -> int:
        """Number of occupied slots."""
        return self.max_slots - len(self._free)

    def acquire(self) -> int:
        """Claim the lowest free slot (cursors rewound); raise when full."""
        if not self._free:
            raise RuntimeError("slot pool exhausted")
        slot = self._free.pop(0)
        for cache in self.caches:
            cache.reset(slots=[slot])
        return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the pool."""
        if not 0 <= slot < self.max_slots:
            raise ValueError(f"slot {slot} out of range 0..{self.max_slots - 1}")
        if slot in self._free:
            raise ValueError(f"slot {slot} is already free")
        self._free.append(slot)
        self._free.sort()


@dataclass
class _RequestState:
    """Book-keeping for one admitted request while it occupies a slot."""

    request: Request
    slot: int
    start_time: float
    first_token_time: Optional[float] = None
    token_ids: List[int] = field(default_factory=list)
    token_latencies: List[float] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        """Tokens of decode budget left."""
        return self.request.decode_tokens - len(self.token_ids)

    @property
    def last_token(self) -> int:
        """Most recently generated token id."""
        return self.token_ids[-1]


@dataclass
class ContinuousServingMetrics:
    """Fleet-level outcome of a continuous-batching run.

    Percentile math routes through :meth:`repro.telemetry.Histogram.
    percentile`; :meth:`goodput_tokens_per_s` counts only tokens from
    requests that met the given SLOs, the serving-paper framing of
    "throughput that users actually experienced as responsive".
    """

    outcomes: List[RequestOutcome]
    wall_time: float
    total_steps: int
    max_slots: int

    @property
    def total_tokens(self) -> int:
        """Tokens actually generated (EOS may cut budgets short)."""
        return sum(o.decode_tokens for o in self.outcomes)

    def throughput_tokens_per_s(self) -> float:
        """Generated tokens per (virtual) wall-clock second."""
        return self.total_tokens / self.wall_time if self.wall_time > 0 \
            else 0.0

    def request_latency_percentile(self, q: float) -> float:
        """``q``-th percentile (0–100) of arrival-to-finish latency."""
        return Histogram.of(o.latency for o in self.outcomes).percentile(q)

    def token_latency_percentile(self, q: float) -> float:
        """``q``-th percentile (0–100) of the pooled per-token latencies."""
        pooled = [float(v) for o in self.outcomes
                  if o.token_latencies is not None
                  for v in o.token_latencies]
        return Histogram.of(pooled).percentile(q)

    def p50_latency(self) -> float:
        """Median per-request latency in seconds."""
        return self.request_latency_percentile(50)

    def p95_latency(self) -> float:
        """95th-percentile per-request latency in seconds."""
        return self.request_latency_percentile(95)

    def p99_latency(self) -> float:
        """99th-percentile per-request latency in seconds."""
        return self.request_latency_percentile(99)

    def mean_queueing(self) -> float:
        """Mean slot-wait (admission minus arrival) in seconds."""
        return float(np.mean([o.queueing_delay for o in self.outcomes]))

    def mean_ttft(self) -> float:
        """Mean arrival-to-first-token time in seconds."""
        return float(np.mean([o.ttft for o in self.outcomes]))

    def goodput_tokens_per_s(self, slo_ttft_s: Optional[float] = None,
                             slo_token_latency_s: Optional[float] = None
                             ) -> float:
        """Throughput counting only requests that met the SLOs.

        A request qualifies when its TTFT is within ``slo_ttft_s`` (if
        given) *and* its p95 per-token latency is within
        ``slo_token_latency_s`` (if given).  With no SLOs this equals
        :meth:`throughput_tokens_per_s`.
        """
        good = 0
        for o in self.outcomes:
            if slo_ttft_s is not None and (o.ttft is None
                                           or o.ttft > slo_ttft_s):
                continue
            if slo_token_latency_s is not None:
                if o.token_latencies is None or \
                        Histogram.of(o.token_latencies).percentile(95) > \
                        slo_token_latency_s:
                    continue
            good += o.decode_tokens
        return good / self.wall_time if self.wall_time > 0 else 0.0


class ContinuousBatchingEngine(LiveEngineBase):
    """Slot-pool continuous batching over a live :class:`MoETransformer`.

    Each engine iteration: admit waiting requests into free slots
    (``admission="fcfs"`` in arrival order, ``"shortest"`` smallest decode
    budget first — a shortest-job heuristic that trades fairness for tail
    latency), run one batched prefill per group of equal-length prompts
    (equal lengths keep padded garbage tokens out of the routing records),
    then one batched ragged decode step over every active slot through
    ``MoETransformer.forward_slots``.  A request finishes on its decode
    budget (``finish_reason="max_tokens"``) or on emitting
    ``eos_token_id`` (``"eos"``, the EOS token included in the output);
    its slot is released and re-acquired by the next waiting request on
    the same iteration boundary.

    Greedy decoding throughout; a single request in an otherwise idle
    pool produces ids bit-identical to
    ``LiveDecodeEngine.decode(mode="cached")`` — the uniform-cursor case
    of ``forward_slots`` performs exactly ``forward_incremental``'s
    arithmetic.

    Knobs shared with :class:`~repro.serving.engine.LiveDecodeEngine`
    through :class:`~repro.serving.engine.LiveEngineBase`: ``dispatch``
    (fused | reference MoE dispatch), ``weight_format`` (native | int8),
    ``executor`` (a :mod:`repro.parallel` process-pool executor),
    ``telemetry``/``monitor``.  Additional here: ``max_slots`` (KV pool
    size = max concurrent requests), ``admission``, ``eos_token_id``,
    ``max_len`` (per-slot cache length, default the model's
    ``max_seq_len``), ``events`` (a :class:`~repro.telemetry.events.
    EventLog` receiving ``request_admit`` / ``request_evict`` events),
    and ``prefetch`` (a :class:`~repro.serving.prefetch.PrefetchConfig`
    attaching the predictive prefetch + hot-expert replication sidecar —
    accounting only, generated ids are unchanged).

    With ``telemetry=``, the run feeds ``serve.queueing_s``,
    ``serve.ttft_s``, ``serve.token_latency_s`` and
    ``serve.request_latency_s`` histograms plus ``serve.queue_depth`` and
    ``serve.active_slots`` gauges — scrapeable live through the
    Prometheus exporter while a long run is in flight.

    With ``tracing=`` (a :class:`~repro.telemetry.tracing.RequestTracer`),
    every request's ``trace_id`` is propagated admission → prefill →
    ragged decode → eviction into a per-request cost ledger: ragged step
    costs split across co-resident slots by token share, prefill stalls
    charged to the slots they delayed, prefetch/dispatch bytes attributed
    per request.  With ``flight=`` (a :class:`~repro.telemetry.flight.
    FlightRecorder`), every engine step appends a ring record (routing
    counts, queue depth, per-slot cursors, co-resident trace ids) and a
    monitor anomaly auto-dumps the post-mortem bundle.  Both are
    accounting-only: generated ids are bit-identical on or off.
    """

    def __init__(self, model: MoETransformer, max_slots: int = 8,
                 dispatch: str = "fused",
                 telemetry: Optional[Telemetry] = None,
                 monitor: Optional[RoutingHealthMonitor] = None,
                 events: Optional[EventLog] = None,
                 executor=None, weight_format: str = "native",
                 eos_token_id: Optional[int] = None,
                 admission: str = "fcfs",
                 max_len: Optional[int] = None,
                 prefetch=None, tracing=None, flight=None):
        if admission not in ADMISSION_POLICIES:
            raise ValueError(f"admission must be one of "
                             f"{ADMISSION_POLICIES}, got {admission!r}")
        super().__init__(model, dispatch=dispatch, telemetry=telemetry,
                         monitor=monitor, executor=executor,
                         weight_format=weight_format, events=events,
                         prefetch=prefetch, tracing=tracing, flight=flight)
        self.max_slots = int(max_slots)
        self.eos_token_id = eos_token_id
        self.admission = admission
        self.max_len = model.config.max_seq_len if max_len is None \
            else int(max_len)
        self.caches = model.new_kv_caches(self.max_slots,
                                          max_len=self.max_len)
        self.pool = SlotPool(self.caches, self.max_slots)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _pop_next(self, queue: List[Request]) -> Request:
        """Remove and return the next request per the admission policy."""
        if self.admission == "fcfs":
            return queue.pop(0)
        # shortest: smallest decode budget, arrival order breaking ties
        best = min(range(len(queue)),
                   key=lambda i: (queue[i].decode_tokens, i))
        return queue.pop(best)

    def _emit(self, kind: str, now: float, **labels) -> None:
        if self.events is not None:
            self.events.emit(MonitorEvent(kind=kind, time_unix=now,
                                          labels=labels))

    # ------------------------------------------------------------------ #
    # serve loop
    # ------------------------------------------------------------------ #
    def serve(self, requests: Sequence[Request]) -> ContinuousServingMetrics:
        """Serve ``requests`` to completion; returns fleet metrics.

        Every request must carry ``prompt_ids`` and fit the slot length:
        ``prompt_len + decode_tokens <= max_len``.  Requests are consumed
        in arrival-time order from an open-loop stream — arrivals are
        never delayed by the engine, only admissions are.
        """
        if not requests:
            raise ValueError("need at least one request")
        for request in requests:
            if request.prompt_ids is None:
                raise ValueError(f"request {request.request_id} has no "
                                 f"prompt_ids; the live engine decodes "
                                 f"real tokens")
            total = request.prompt_len + request.decode_tokens
            if total > self.max_len:
                raise ValueError(
                    f"request {request.request_id}: prompt "
                    f"({request.prompt_len}) + decode budget "
                    f"({request.decode_tokens}) exceeds slot max_len "
                    f"{self.max_len}")

        pending = sorted(requests, key=lambda r: (r.arrival_time,
                                                  r.request_id))
        queue: List[Request] = []
        active: Dict[int, _RequestState] = {}  # slot -> state
        outcomes: List[RequestOutcome] = []
        now = 0.0
        steps = 0

        telemetry = self.telemetry
        monitor = self.monitor
        prefetcher = self.prefetcher
        tracing = self.tracing
        flight = self.flight
        num_experts = self.model.config.num_experts

        engine_steps = 0  # every forward: prefill groups + decode steps

        def observe_routing(kind: str) -> None:
            nonlocal engine_steps
            if monitor is None and prefetcher is None and tracing is None \
                    and flight is None:
                return
            engine_steps += 1
            records = self.model.routing_records()
            report = prefetcher.observe_records(records) \
                if prefetcher is not None else None
            if tracing is not None and report is not None:
                # The report's byte fields are exactly what the prefetcher
                # just added to the serve.prefetch_* counters; attributing
                # the same amounts keeps ledger sums tiling the aggregates.
                tracing.attribute_fetch(report)
            if flight is not None:
                counts = np.stack([record.access_counts(num_experts)
                                   for record in records]) if records \
                    else None
                occupied = sorted(active)
                flight.observe(
                    step=engine_steps - 1, kind=kind, time=now, counts=counts,
                    queue_depth=len(queue), active_slots=len(active),
                    placement=self.active_placement,
                    slot_positions={
                        slot: int(self.caches[0].positions[slot])
                        for slot in occupied},
                    trace_ids=[active[slot].request.trace_id
                               for slot in occupied])
            # The monitor goes last: an anomaly latching on this step
            # auto-dumps the flight ring, which must already contain the
            # step's record for the bundle to cover the anomaly.
            if monitor is not None:
                monitor.observe_records(records, num_experts=num_experts)

        def set_gauges() -> None:
            if telemetry is not None:
                telemetry.gauge("serve.queue_depth").set(len(queue))
                telemetry.gauge("serve.active_slots").set(len(active))

        def finish(state: _RequestState, reason: str) -> None:
            self.pool.release(state.slot)
            request = state.request
            outcome = RequestOutcome(
                request_id=request.request_id,
                arrival_time=request.arrival_time,
                start_time=state.start_time,
                finish_time=now,
                decode_tokens=len(state.token_ids),
                first_token_time=state.first_token_time,
                finish_reason=reason,
                token_ids=np.asarray(state.token_ids, dtype=np.int64),
                token_latencies=np.asarray(state.token_latencies))
            outcomes.append(outcome)
            if telemetry is not None:
                telemetry.histogram("serve.request_latency_s").observe(
                    outcome.latency)
            if tracing is not None:
                tracing.finish(request.trace_id, now=now, reason=reason,
                               token_latencies=state.token_latencies)
            self._emit("request_evict", now, request_id=request.request_id,
                       slot=state.slot, finish_reason=reason,
                       tokens=len(state.token_ids),
                       queue_depth=len(queue))

        with serving_flags(self.model), no_grad():
            while pending or queue or active:
                # -- apply a staged placement hot-swap ------------------- #
                # Iteration boundary: every slot finished its previous
                # decode step under the old placement; nothing is evicted
                # or re-prefilled, the next batched step simply scores
                # (and, in a real deployment, routes) against the new
                # assignment.
                swapped = self.apply_pending_placement()
                if swapped is not None:
                    self._emit("placement_swap", now,
                               placement=getattr(swapped, "name", ""),
                               active_slots=len(active),
                               queue_depth=len(queue))

                # -- arrivals up to the current virtual time ------------- #
                while pending and pending[0].arrival_time <= now:
                    queue.append(pending.pop(0))
                if not queue and not active:
                    now = pending[0].arrival_time  # idle: fast-forward
                    continue

                # -- admit into free slots ------------------------------- #
                admitted: List[_RequestState] = []
                while queue and self.pool.free_count > 0:
                    request = self._pop_next(queue)
                    slot = self.pool.acquire()
                    state = _RequestState(request=request, slot=slot,
                                          start_time=now)
                    active[slot] = state
                    admitted.append(state)
                    if telemetry is not None:
                        telemetry.histogram("serve.queueing_s").observe(
                            now - request.arrival_time)
                    if tracing is not None:
                        tracing.admit(request, now=now,
                                      queue_depth=len(queue))
                    self._emit("request_admit", now,
                               request_id=request.request_id, slot=slot,
                               queue_depth=len(queue))
                set_gauges()

                # -- batched prefill, grouped by prompt length ----------- #
                # Equal lengths per forward_slots call: no padding, so no
                # garbage tokens pollute the routing records feeding the
                # locality profiler and the health monitor.
                by_len: Dict[int, List[_RequestState]] = {}
                for state in admitted:
                    by_len.setdefault(state.request.prompt_len,
                                      []).append(state)
                for length in sorted(by_len):
                    group = by_len[length]
                    prompts = np.stack([s.request.prompt_ids
                                        for s in group])
                    slots = np.asarray([s.slot for s in group],
                                       dtype=np.int64)
                    if tracing is not None:
                        # This forward serves `length` prompt tokens per
                        # group member; anything it fetches/dispatches is
                        # split across the group by that (equal) share.
                        tracing.set_step([(s.request.trace_id, length)
                                          for s in group])
                    t0 = time.perf_counter()
                    logits = self.model.forward_slots(prompts, self.caches,
                                                      slots)
                    elapsed = time.perf_counter() - t0
                    now += elapsed
                    first = np.argmax(logits.data[:, -1, :], axis=-1)
                    for state, token in zip(group, first):
                        state.token_ids.append(int(token))
                        state.token_latencies.append(elapsed)
                        state.first_token_time = now
                        if telemetry is not None:
                            telemetry.histogram("serve.ttft_s").observe(
                                now - state.request.arrival_time)
                            telemetry.histogram(
                                "serve.token_latency_s").observe(elapsed)
                    if tracing is not None:
                        tracing.prefill(
                            [s.request.trace_id for s in group],
                            now - elapsed, elapsed)
                        # Requests that already hold a token (mid-decode,
                        # or prefilled in an earlier group this iteration)
                        # sat through this prefill without advancing —
                        # that wait is their stall, not their decode time.
                        group_ids = {id(s) for s in group}
                        tracing.stall(
                            [s.request.trace_id for s in active.values()
                             if id(s) not in group_ids and s.token_ids],
                            elapsed)
                    observe_routing("prefill")

                # prefill may already satisfy a request (EOS on the first
                # token, or a 1-token budget)
                for state in admitted:
                    if self.eos_token_id is not None and \
                            state.last_token == self.eos_token_id:
                        del active[state.slot]
                        finish(state, "eos")
                    elif state.remaining == 0:
                        del active[state.slot]
                        finish(state, "max_tokens")

                # -- one batched ragged decode step ---------------------- #
                deciding = [active[slot] for slot in sorted(active)]
                if deciding:
                    tokens = np.asarray([[s.last_token] for s in deciding],
                                        dtype=np.int64)
                    slots = np.asarray([s.slot for s in deciding],
                                       dtype=np.int64)
                    if tracing is not None:
                        # One token per co-resident slot: the ragged
                        # step's shared costs split by equal token share.
                        tracing.set_step([(s.request.trace_id, 1)
                                          for s in deciding])
                    t0 = time.perf_counter()
                    logits = self.model.forward_slots(tokens, self.caches,
                                                      slots)
                    elapsed = time.perf_counter() - t0
                    now += elapsed
                    steps += 1
                    next_tokens = np.argmax(logits.data[:, -1, :], axis=-1)
                    for state, token in zip(deciding, next_tokens):
                        state.token_ids.append(int(token))
                        state.token_latencies.append(elapsed)
                        if telemetry is not None:
                            telemetry.histogram(
                                "serve.token_latency_s").observe(elapsed)
                    if tracing is not None:
                        tracing.decode_step(
                            [s.request.trace_id for s in deciding],
                            now - elapsed, elapsed)
                    observe_routing("decode")
                    for state in deciding:
                        if self.eos_token_id is not None and \
                                state.last_token == self.eos_token_id:
                            del active[state.slot]
                            finish(state, "eos")
                        elif state.remaining == 0:
                            del active[state.slot]
                            finish(state, "max_tokens")
                set_gauges()

        outcomes.sort(key=lambda o: o.request_id)
        return ContinuousServingMetrics(outcomes=outcomes, wall_time=now,
                                        total_steps=steps,
                                        max_slots=self.max_slots)
