"""Offloaded MoE serving simulation (expert caching, decode latency)."""

from .batching import (FINISH_REASONS, BatchedDecodeSimulator,
                       BatchedServingMetrics, Request, RequestOutcome,
                       poisson_workload)
from .cache import POLICIES, CacheStats, ExpertCache, hot_expert_keys
from .engine import (DECODE_MODES, DecodeSimulator, LiveDecodeEngine,
                     LiveEngineBase, ServingConfig, ServingMetrics,
                     serving_flags)
from .prefetch import (PrefetchingDecodeSimulator, PrefetchStats,
                       SpeculativePrefetcher)
from .scheduler import (ADMISSION_POLICIES, ContinuousBatchingEngine,
                        ContinuousServingMetrics, SlotPool)

__all__ = [
    "ExpertCache", "CacheStats", "POLICIES", "hot_expert_keys",
    "DecodeSimulator", "LiveDecodeEngine", "LiveEngineBase",
    "DECODE_MODES", "ServingConfig", "ServingMetrics", "serving_flags",
    "BatchedDecodeSimulator", "BatchedServingMetrics", "Request",
    "RequestOutcome", "poisson_workload", "FINISH_REASONS",
    "ContinuousBatchingEngine", "ContinuousServingMetrics", "SlotPool",
    "ADMISSION_POLICIES",
    "SpeculativePrefetcher", "PrefetchingDecodeSimulator", "PrefetchStats",
]
