"""Offloaded MoE serving simulation (expert caching, decode latency)."""

from .batching import (BatchedDecodeSimulator, BatchedServingMetrics,
                       Request, RequestOutcome, poisson_workload)
from .cache import POLICIES, CacheStats, ExpertCache, hot_expert_keys
from .engine import (DECODE_MODES, DecodeSimulator, LiveDecodeEngine,
                     ServingConfig, ServingMetrics)
from .prefetch import (PrefetchingDecodeSimulator, PrefetchStats,
                       SpeculativePrefetcher)

__all__ = [
    "ExpertCache", "CacheStats", "POLICIES", "hot_expert_keys",
    "DecodeSimulator", "LiveDecodeEngine", "DECODE_MODES", "ServingConfig",
    "ServingMetrics",
    "BatchedDecodeSimulator", "BatchedServingMetrics", "Request",
    "RequestOutcome", "poisson_workload",
    "SpeculativePrefetcher", "PrefetchingDecodeSimulator", "PrefetchStats",
]
