"""Offloaded MoE serving simulation (expert caching, decode latency)."""

from .batching import (FINISH_REASONS, BatchedDecodeSimulator,
                       BatchedServingMetrics, Request, RequestOutcome,
                       poisson_workload)
from .cache import (POLICIES, CacheStats, ExpertCache, hot_expert_keys,
                    safe_ratio)
from .engine import (DECODE_MODES, DecodeSimulator, LiveDecodeEngine,
                     LiveEngineBase, ServingConfig, ServingMetrics,
                     serving_flags)
from .prefetch import (LIVE_CACHE_POLICIES, PREDICTORS, DecodePrefetcher,
                       OraclePredictor, OverlappedFetchScheduler,
                       PrefetchConfig, PrefetchStats,
                       PrefetchingDecodeSimulator, PreviousTokenPredictor,
                       SpeculativePrefetcher, StepFetchReport,
                       TransitionPredictor, make_predictor,
                       markov_decode_stream, replay_stream,
                       sample_decode_stream, stream_lookahead)
from .scheduler import (ADMISSION_POLICIES, ContinuousBatchingEngine,
                        ContinuousServingMetrics, SlotPool)

__all__ = [
    "ExpertCache", "CacheStats", "POLICIES", "hot_expert_keys",
    "DecodeSimulator", "LiveDecodeEngine", "LiveEngineBase",
    "DECODE_MODES", "ServingConfig", "ServingMetrics", "serving_flags",
    "BatchedDecodeSimulator", "BatchedServingMetrics", "Request",
    "RequestOutcome", "poisson_workload", "FINISH_REASONS",
    "ContinuousBatchingEngine", "ContinuousServingMetrics", "SlotPool",
    "ADMISSION_POLICIES",
    "SpeculativePrefetcher", "PrefetchingDecodeSimulator", "PrefetchStats",
    "safe_ratio", "PREDICTORS", "LIVE_CACHE_POLICIES", "make_predictor",
    "TransitionPredictor", "PreviousTokenPredictor", "OraclePredictor",
    "OverlappedFetchScheduler", "StepFetchReport", "DecodePrefetcher",
    "PrefetchConfig", "sample_decode_stream", "markov_decode_stream",
    "stream_lookahead", "replay_stream",
]
