"""Continuous batching: concurrent decode streams sharing one expert cache.

Single-stream decoding pays one potential fetch per (layer, expert) per
token.  With several concurrent requests, tokens decoded in the same engine
step share expert activations — a fetched expert serves every stream that
routed to it — so cache pressure *per token* drops as concurrency rises.
This simulates that effect plus simple request queueing:

* Poisson request arrivals with configurable decode lengths,
* a batch slot limit (max concurrent streams),
* per-step expert union across active streams (fetch once, use many),
* per-request latency = queueing + decode steps' wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..models.config import MoEModelConfig
from ..routing.synthetic import SyntheticRouter
from ..telemetry.instruments import Histogram
from ..telemetry.tracing import mint_trace_id
from .cache import ExpertCache
from .engine import ServingConfig


@dataclass(frozen=True)
class Request:
    """One inference request.

    The trace-level simulator below only needs the timing fields; the live
    :class:`~repro.serving.scheduler.ContinuousBatchingEngine` additionally
    decodes real tokens, so ``prompt_ids`` (a 1-D token-id array) carries
    the prompt.  ``decode_tokens`` is the generation budget — the live
    engine may finish earlier on EOS.  ``prompt_ids`` stays out of
    equality/ordering so workload lists still compare by timing.

    Every request carries a ``trace_id`` minted at construction — the
    request-scoped trace context the serving engines propagate through
    admission → prefill → ragged decode → eviction (see
    :class:`~repro.telemetry.tracing.RequestTracer`).  It stays out of
    equality/repr for the same reason as ``prompt_ids``.
    """

    request_id: int
    arrival_time: float
    decode_tokens: int
    prompt_ids: Optional[np.ndarray] = field(default=None, compare=False,
                                             repr=False)
    trace_id: Optional[str] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.decode_tokens < 1:
            raise ValueError("decode_tokens must be positive")
        if self.trace_id is None:
            object.__setattr__(self, "trace_id", mint_trace_id())
        if self.prompt_ids is not None:
            ids = np.asarray(self.prompt_ids, dtype=np.int64)
            if ids.ndim != 1 or ids.size < 1:
                raise ValueError(f"prompt_ids must be a non-empty 1-D token "
                                 f"array, got shape {ids.shape}")
            object.__setattr__(self, "prompt_ids", ids)

    @property
    def prompt_len(self) -> int:
        """Prompt length in tokens (0 when the request carries no prompt)."""
        return 0 if self.prompt_ids is None else int(self.prompt_ids.size)


def poisson_workload(num_requests: int, arrival_rate: float,
                     mean_decode_tokens: int = 64, seed: int = 0,
                     rng: Optional[np.random.Generator] = None,
                     prompt_len: Optional[Union[int, Tuple[int, int]]] = None,
                     vocab_size: Optional[int] = None) -> List[Request]:
    """Sample a Poisson arrival stream with geometric decode lengths.

    Pass ``rng`` to draw from a caller-owned generator (``seed`` is then
    ignored), e.g. to chain several workload phases off one stream.  With
    ``prompt_len`` (an int, or an inclusive ``(lo, hi)`` range) and
    ``vocab_size``, each request also gets uniform-random ``prompt_ids``
    for the live continuous-batching engine.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if mean_decode_tokens < 1:
        raise ValueError("mean_decode_tokens must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate,
                                         size=num_requests))
    lengths = 1 + rng.geometric(1.0 / mean_decode_tokens, size=num_requests)
    prompts: List[Optional[np.ndarray]] = [None] * num_requests
    if prompt_len is not None:
        if vocab_size is None:
            raise ValueError("vocab_size is required when prompt_len is set")
        lo, hi = (prompt_len if isinstance(prompt_len, tuple)
                  else (prompt_len, prompt_len))
        if lo < 1 or hi < lo:
            raise ValueError(f"prompt_len range must satisfy 1 <= lo <= hi, "
                             f"got ({lo}, {hi})")
        prompt_lens = rng.integers(lo, hi + 1, size=num_requests)
        prompts = [rng.integers(0, vocab_size, size=int(n))
                   for n in prompt_lens]
    return [Request(i, float(arrivals[i]), int(lengths[i]),
                    prompt_ids=prompts[i])
            for i in range(num_requests)]


FINISH_REASONS = ("max_tokens", "eos")


@dataclass
class RequestOutcome:
    """Timing (and, from the live engine, content) of one completed request.

    The trace-level simulator fills only the timing fields; the live
    :class:`~repro.serving.scheduler.ContinuousBatchingEngine` also records
    the first-token time, the finish reason (``"eos"`` | ``"max_tokens"``),
    the generated ids, and the per-token latency series.
    """

    request_id: int
    arrival_time: float
    start_time: float
    finish_time: float
    decode_tokens: int
    first_token_time: Optional[float] = None
    finish_reason: str = "max_tokens"
    token_ids: Optional[np.ndarray] = field(default=None, compare=False,
                                            repr=False)
    token_latencies: Optional[np.ndarray] = field(default=None,
                                                  compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.finish_reason not in FINISH_REASONS:
            raise ValueError(f"finish_reason must be one of "
                             f"{FINISH_REASONS}, got {self.finish_reason!r}")

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for a batch slot."""
        return self.start_time - self.arrival_time

    @property
    def latency(self) -> float:
        """Arrival-to-finish time."""
        return self.finish_time - self.arrival_time

    @property
    def ttft(self) -> Optional[float]:
        """Arrival-to-first-token time (``None`` from the simulator)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time


@dataclass
class BatchedServingMetrics:
    """Fleet-level outcome of a batched serving run.

    Percentile math routes through :meth:`repro.telemetry.Histogram.
    percentile` — one quantile implementation for the whole repo.
    """

    outcomes: List[RequestOutcome]
    hit_rate: float
    total_steps: int
    wall_time: float

    def mean_latency(self) -> float:
        """Mean per-token latency in seconds."""
        return float(np.mean([o.latency for o in self.outcomes]))

    def latency_percentile(self, q: float) -> float:
        """``q``-th percentile (0–100) of per-request latency in seconds."""
        return Histogram.of(o.latency for o in self.outcomes).percentile(q)

    def p50_latency(self) -> float:
        """Median per-request latency in seconds."""
        return self.latency_percentile(50)

    def p95_latency(self) -> float:
        """95th-percentile per-request latency in seconds."""
        return self.latency_percentile(95)

    def p99_latency(self) -> float:
        """99th-percentile per-request latency in seconds."""
        return self.latency_percentile(99)

    def mean_queueing(self) -> float:
        """Mean queueing delay in seconds."""
        return float(np.mean([o.queueing_delay for o in self.outcomes]))

    def throughput_tokens_per_s(self) -> float:
        """Decoded tokens per wall-clock second."""
        total = sum(o.decode_tokens for o in self.outcomes)
        return total / self.wall_time if self.wall_time > 0 else 0.0


class BatchedDecodeSimulator:
    """Continuous-batching decode loop over a shared expert cache."""

    def __init__(self, config: MoEModelConfig, router: SyntheticRouter,
                 cache: ExpertCache, max_batch: int = 8,
                 serving: Optional[ServingConfig] = None, seed: int = 0):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.config = config
        self.router = router
        self.cache = cache
        self.max_batch = max_batch
        self.serving = serving or ServingConfig()
        self.seed = seed
        from ..runtime.flops import FlopModel
        self._flops = FlopModel(config)
        self._expert_nbytes = config.expert_nbytes()

    def _step_compute_time(self, active: int) -> float:
        """One engine step: every active stream advances one token."""
        device = self.serving.device
        per_block = self._flops.backbone_layer_time(
            device, float(active), self.serving.context_len)
        per_block += self.config.top_k * self._flops.expert_time(
            device, float(active))
        return per_block * self.config.num_layers + \
            self._flops.head_time(device, float(active))

    def run(self, requests: List[Request]) -> BatchedServingMetrics:
        """Serve ``requests`` to completion."""
        if not requests:
            raise ValueError("need at least one request")
        rng = np.random.default_rng(self.seed)
        logits = self.router.base_logits
        temperature = self.router.regime.gate_temperature
        fetch = self.serving.fetch_time(self._expert_nbytes)
        k = self.config.top_k

        pending = sorted(requests, key=lambda r: r.arrival_time)
        queue: List[Request] = []
        active: dict = {}          # request_id -> tokens remaining
        started: dict = {}
        outcomes: List[RequestOutcome] = []
        by_id = {r.request_id: r for r in requests}

        now = 0.0
        steps = 0
        while pending or queue or active:
            # admit arrivals up to now
            while pending and pending[0].arrival_time <= now:
                queue.append(pending.pop(0))
            while queue and len(active) < self.max_batch:
                request = queue.pop(0)
                active[request.request_id] = request.decode_tokens
                started[request.request_id] = max(now,
                                                  request.arrival_time)
            if not active:
                now = pending[0].arrival_time
                continue

            # one engine step: union of experts needed across streams
            needed = set()
            for _ in active:
                gumbel = rng.gumbel(size=logits.shape) * temperature
                chosen = np.argpartition(-(logits + gumbel), k - 1,
                                         axis=1)[:, :k]
                for layer in range(self.config.num_layers):
                    for expert in chosen[layer]:
                        needed.add((layer, int(expert)))
            misses = sum(0 if self.cache.access(key) else 1
                         for key in sorted(needed))
            now += self._step_compute_time(len(active)) + misses * fetch
            steps += 1

            finished = [rid for rid, left in active.items() if left <= 1]
            for rid in active:
                active[rid] -= 1
            for rid in finished:
                del active[rid]
                request = by_id[rid]
                outcomes.append(RequestOutcome(
                    request_id=rid, arrival_time=request.arrival_time,
                    start_time=started[rid], finish_time=now,
                    decode_tokens=request.decode_tokens))

        outcomes.sort(key=lambda o: o.request_id)
        return BatchedServingMetrics(outcomes=outcomes,
                                     hit_rate=self.cache.stats.hit_rate,
                                     total_steps=steps, wall_time=now)
