"""Continuous batching: concurrent decode streams sharing one expert cache.

Single-stream decoding pays one potential fetch per (layer, expert) per
token.  With several concurrent requests, tokens decoded in the same engine
step share expert activations — a fetched expert serves every stream that
routed to it — so cache pressure *per token* drops as concurrency rises.
This simulates that effect plus simple request queueing:

* Poisson request arrivals with configurable decode lengths,
* a batch slot limit (max concurrent streams),
* per-step expert union across active streams (fetch once, use many),
* per-request latency = queueing + decode steps' wall time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..models.config import MoEModelConfig
from ..routing.synthetic import SyntheticRouter
from .cache import ExpertCache
from .engine import ServingConfig


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_time: float
    decode_tokens: int

    def __post_init__(self) -> None:
        if self.decode_tokens < 1:
            raise ValueError("decode_tokens must be positive")


def poisson_workload(num_requests: int, arrival_rate: float,
                     mean_decode_tokens: int = 64,
                     seed: int = 0) -> List[Request]:
    """Sample a Poisson arrival stream with geometric decode lengths."""
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if mean_decode_tokens < 1:
        raise ValueError("mean_decode_tokens must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate,
                                         size=num_requests))
    lengths = 1 + rng.geometric(1.0 / mean_decode_tokens, size=num_requests)
    return [Request(i, float(arrivals[i]), int(lengths[i]))
            for i in range(num_requests)]


@dataclass
class RequestOutcome:
    """Timing of one completed request."""
    request_id: int
    arrival_time: float
    start_time: float
    finish_time: float
    decode_tokens: int

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for a batch slot."""
        return self.start_time - self.arrival_time

    @property
    def latency(self) -> float:
        """Arrival-to-finish time."""
        return self.finish_time - self.arrival_time


@dataclass
class BatchedServingMetrics:
    """Fleet-level outcome of a batched serving run."""
    outcomes: List[RequestOutcome]
    hit_rate: float
    total_steps: int
    wall_time: float

    def mean_latency(self) -> float:
        """Mean per-token latency in seconds."""
        return float(np.mean([o.latency for o in self.outcomes]))

    def p99_latency(self) -> float:
        """99th-percentile per-token latency in seconds."""
        return float(np.quantile([o.latency for o in self.outcomes], 0.99))

    def mean_queueing(self) -> float:
        """Mean queueing delay in seconds."""
        return float(np.mean([o.queueing_delay for o in self.outcomes]))

    def throughput_tokens_per_s(self) -> float:
        """Decoded tokens per wall-clock second."""
        total = sum(o.decode_tokens for o in self.outcomes)
        return total / self.wall_time if self.wall_time > 0 else 0.0


class BatchedDecodeSimulator:
    """Continuous-batching decode loop over a shared expert cache."""

    def __init__(self, config: MoEModelConfig, router: SyntheticRouter,
                 cache: ExpertCache, max_batch: int = 8,
                 serving: Optional[ServingConfig] = None, seed: int = 0):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.config = config
        self.router = router
        self.cache = cache
        self.max_batch = max_batch
        self.serving = serving or ServingConfig()
        self.seed = seed
        from ..runtime.flops import FlopModel
        self._flops = FlopModel(config)
        self._expert_nbytes = config.expert_nbytes()

    def _step_compute_time(self, active: int) -> float:
        """One engine step: every active stream advances one token."""
        device = self.serving.device
        per_block = self._flops.backbone_layer_time(
            device, float(active), self.serving.context_len)
        per_block += self.config.top_k * self._flops.expert_time(
            device, float(active))
        return per_block * self.config.num_layers + \
            self._flops.head_time(device, float(active))

    def run(self, requests: List[Request]) -> BatchedServingMetrics:
        """Serve ``requests`` to completion."""
        if not requests:
            raise ValueError("need at least one request")
        rng = np.random.default_rng(self.seed)
        logits = self.router.base_logits
        temperature = self.router.regime.gate_temperature
        fetch = self.serving.fetch_time(self._expert_nbytes)
        k = self.config.top_k

        pending = sorted(requests, key=lambda r: r.arrival_time)
        queue: List[Request] = []
        active: dict = {}          # request_id -> tokens remaining
        started: dict = {}
        outcomes: List[RequestOutcome] = []
        by_id = {r.request_id: r for r in requests}

        now = 0.0
        steps = 0
        while pending or queue or active:
            # admit arrivals up to now
            while pending and pending[0].arrival_time <= now:
                queue.append(pending.pop(0))
            while queue and len(active) < self.max_batch:
                request = queue.pop(0)
                active[request.request_id] = request.decode_tokens
                started[request.request_id] = max(now,
                                                  request.arrival_time)
            if not active:
                now = pending[0].arrival_time
                continue

            # one engine step: union of experts needed across streams
            needed = set()
            for _ in active:
                gumbel = rng.gumbel(size=logits.shape) * temperature
                chosen = np.argpartition(-(logits + gumbel), k - 1,
                                         axis=1)[:, :k]
                for layer in range(self.config.num_layers):
                    for expert in chosen[layer]:
                        needed.add((layer, int(expert)))
            misses = sum(0 if self.cache.access(key) else 1
                         for key in sorted(needed))
            now += self._step_compute_time(len(active)) + misses * fetch
            steps += 1

            finished = [rid for rid, left in active.items() if left <= 1]
            for rid in active:
                active[rid] -= 1
            for rid in finished:
                del active[rid]
                request = by_id[rid]
                outcomes.append(RequestOutcome(
                    request_id=rid, arrival_time=request.arrival_time,
                    start_time=started[rid], finish_time=now,
                    decode_tokens=request.decode_tokens))

        outcomes.sort(key=lambda o: o.request_id)
        return BatchedServingMetrics(outcomes=outcomes,
                                     hit_rate=self.cache.stats.hit_rate,
                                     total_steps=steps, wall_time=now)
