"""Expert caching for offloaded MoE inference.

The paper's related work (Fiddler, MoE-Infinity) serves MoE models whose
experts don't fit in GPU memory by caching a subset on-device and fetching
the rest from host RAM on demand.  This module implements the cache with
three eviction/placement policies:

* ``lru`` — classic recency eviction,
* ``lfu`` — frequency eviction (MoE-Infinity-style activation awareness),
* ``pinned`` — VELA's insight applied to serving: pin the experts the
  locality profile says are hot, evict only among the unpinned remainder,
* ``belady`` — the offline oracle (evict the key reused furthest in the
  future, given a ``lookahead`` access sequence) — the upper bound the
  prefetch benchmark reports the online policies against.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence, Set, Tuple

import numpy as np

ExpertKey = Tuple[int, int]  # (layer, expert)

POLICIES = ("lru", "lfu", "pinned", "belady")


def safe_ratio(part: float, whole: float) -> float:
    """``part / whole`` with one repo-wide zero-denominator convention.

    Every hit-rate/accuracy style statistic in :mod:`repro.serving` routes
    through this helper, so a cache that was never accessed and a
    prefetcher that never predicted report the same value — ``0.0`` — and
    never divide by zero.
    """
    return part / whole if whole else 0.0


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total cache accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Cache hits over total accesses (0.0 with no accesses)."""
        return safe_ratio(self.hits, self.accesses)


class ExpertCache:
    """Fixed-capacity expert cache with pluggable eviction policy.

    Parameters
    ----------
    capacity:
        Expert slots available on the device.
    policy:
        One of :data:`POLICIES`.
    pinned:
        For the ``pinned`` policy: expert keys that are never evicted
        (typically the profile's hottest experts).  Must fit in capacity.
    lookahead:
        For the ``belady`` policy: the future access sequence, in the
        exact order :meth:`access` will replay it.  Each access consumes
        the key's earliest remaining scheduled position; eviction removes
        the resident key whose next scheduled use is furthest away (never
        reused beats everything).  Offline-only by construction — the
        oracle upper bound for the prefetch/caching benchmarks.
    """

    def __init__(self, capacity: int, policy: str = "lru",
                 pinned: Optional[Set[ExpertKey]] = None,
                 lookahead: Optional[Sequence[ExpertKey]] = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        pinned = set(pinned or ())
        if policy == "pinned" and len(pinned) > capacity:
            raise ValueError(f"{len(pinned)} pinned experts exceed capacity "
                             f"{capacity}")
        if policy != "pinned" and pinned:
            raise ValueError("pinned set requires the 'pinned' policy")
        if policy == "belady" and lookahead is None:
            raise ValueError("the 'belady' policy requires a lookahead "
                             "access sequence")
        if policy != "belady" and lookahead is not None:
            raise ValueError("lookahead requires the 'belady' policy")
        self.capacity = capacity
        self.policy = policy
        self.pinned = pinned
        self.stats = CacheStats()
        self._resident: "OrderedDict[ExpertKey, int]" = OrderedDict()
        self._frequency: Dict[ExpertKey, int] = {}
        self._future: Dict[ExpertKey, Deque[int]] = {}
        if lookahead is not None:
            for position, key in enumerate(lookahead):
                key = (int(key[0]), int(key[1]))
                self._future.setdefault(key, deque()).append(position)
        # Pinned experts start resident (they are loaded at startup).
        for key in sorted(pinned):
            self._resident[key] = 0

    # ------------------------------------------------------------------ #
    @property
    def resident(self) -> Set[ExpertKey]:
        """Keys currently cached."""
        return set(self._resident)

    def __contains__(self, key: ExpertKey) -> bool:
        return key in self._resident

    def access(self, key: ExpertKey) -> bool:
        """Access one expert; returns True on hit (False triggered a fetch)."""
        self._frequency[key] = self._frequency.get(key, 0) + 1
        if self.policy == "belady":
            # This access consumes the key's earliest scheduled position,
            # so _next_use now answers "when is it needed *again*".
            scheduled = self._future.get(key)
            if scheduled:
                scheduled.popleft()
        if key in self._resident:
            self.stats.hits += 1
            self._resident.move_to_end(key)
            return True
        self.stats.misses += 1
        self._admit(key)
        return False

    def _admit(self, key: ExpertKey) -> None:
        if len(self._resident) >= self.capacity:
            self._evict()
        self._resident[key] = 0
        self._resident.move_to_end(key)

    def _next_use(self, key: ExpertKey) -> float:
        """Position of the key's next scheduled access (inf = never again)."""
        scheduled = self._future.get(key)
        return float(scheduled[0]) if scheduled else math.inf

    def _evict(self) -> None:
        candidates = [k for k in self._resident if k not in self.pinned]
        if not candidates:
            raise RuntimeError("cache full of pinned experts; cannot admit")
        if self.policy == "lfu":
            victim = min(candidates, key=lambda k: (self._frequency.get(k, 0), k))
        elif self.policy == "belady":
            # The oracle: evict the key reused furthest in the future
            # (ties broken toward the larger key, deterministically).
            victim = max(candidates, key=lambda k: (self._next_use(k), k))
        else:  # lru and pinned both evict by recency among the evictable
            victim = next(k for k in self._resident if k not in self.pinned)
        del self._resident[victim]
        self.stats.evictions += 1


def hot_expert_keys(probability_matrix: np.ndarray, budget: int) -> Set[ExpertKey]:
    """The ``budget`` globally hottest experts — the pinned policy's input."""
    p = np.asarray(probability_matrix)
    if budget < 0:
        raise ValueError("budget must be non-negative")
    flat = [(p[l, e], (l, e))
            for l in range(p.shape[0]) for e in range(p.shape[1])]
    flat.sort(reverse=True)
    return {key for _, key in flat[:budget]}
