"""Expert caching for offloaded MoE inference.

The paper's related work (Fiddler, MoE-Infinity) serves MoE models whose
experts don't fit in GPU memory by caching a subset on-device and fetching
the rest from host RAM on demand.  This module implements the cache with
three eviction/placement policies:

* ``lru`` — classic recency eviction,
* ``lfu`` — frequency eviction (MoE-Infinity-style activation awareness),
* ``pinned`` — VELA's insight applied to serving: pin the experts the
  locality profile says are hot, evict only among the unpinned remainder.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

import numpy as np

ExpertKey = Tuple[int, int]  # (layer, expert)

POLICIES = ("lru", "lfu", "pinned")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total cache accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Cache hits over total accesses."""
        return self.hits / self.accesses if self.accesses else 0.0


class ExpertCache:
    """Fixed-capacity expert cache with pluggable eviction policy.

    Parameters
    ----------
    capacity:
        Expert slots available on the device.
    policy:
        One of :data:`POLICIES`.
    pinned:
        For the ``pinned`` policy: expert keys that are never evicted
        (typically the profile's hottest experts).  Must fit in capacity.
    """

    def __init__(self, capacity: int, policy: str = "lru",
                 pinned: Optional[Set[ExpertKey]] = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        pinned = set(pinned or ())
        if policy == "pinned" and len(pinned) > capacity:
            raise ValueError(f"{len(pinned)} pinned experts exceed capacity "
                             f"{capacity}")
        if policy != "pinned" and pinned:
            raise ValueError("pinned set requires the 'pinned' policy")
        self.capacity = capacity
        self.policy = policy
        self.pinned = pinned
        self.stats = CacheStats()
        self._resident: "OrderedDict[ExpertKey, int]" = OrderedDict()
        self._frequency: Dict[ExpertKey, int] = {}
        # Pinned experts start resident (they are loaded at startup).
        for key in sorted(pinned):
            self._resident[key] = 0

    # ------------------------------------------------------------------ #
    @property
    def resident(self) -> Set[ExpertKey]:
        """Keys currently cached."""
        return set(self._resident)

    def __contains__(self, key: ExpertKey) -> bool:
        return key in self._resident

    def access(self, key: ExpertKey) -> bool:
        """Access one expert; returns True on hit (False triggered a fetch)."""
        self._frequency[key] = self._frequency.get(key, 0) + 1
        if key in self._resident:
            self.stats.hits += 1
            self._resident.move_to_end(key)
            return True
        self.stats.misses += 1
        self._admit(key)
        return False

    def _admit(self, key: ExpertKey) -> None:
        if len(self._resident) >= self.capacity:
            self._evict()
        self._resident[key] = 0
        self._resident.move_to_end(key)

    def _evict(self) -> None:
        candidates = [k for k in self._resident if k not in self.pinned]
        if not candidates:
            raise RuntimeError("cache full of pinned experts; cannot admit")
        if self.policy == "lfu":
            victim = min(candidates, key=lambda k: (self._frequency.get(k, 0), k))
        else:  # lru and pinned both evict by recency among the evictable
            victim = next(k for k in self._resident if k not in self.pinned)
        del self._resident[victim]
        self.stats.evictions += 1


def hot_expert_keys(probability_matrix: np.ndarray, budget: int) -> Set[ExpertKey]:
    """The ``budget`` globally hottest experts — the pinned policy's input."""
    p = np.asarray(probability_matrix)
    if budget < 0:
        raise ValueError("budget must be non-negative")
    flat = [(p[l, e], (l, e))
            for l in range(p.shape[0]) for e in range(p.shape[1])]
    flat.sort(reverse=True)
    return {key for _, key in flat[:budget]}
