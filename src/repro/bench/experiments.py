"""Experiment implementations, one per paper figure.

Each function runs an experiment end-to-end and returns a structured result;
the benchmarks print these and assert the paper's qualitative shape, and
``repro.bench.harness`` composes them into EXPERIMENTS.md content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.baselines import PAPER_STRATEGIES, compare_strategies, reduction_vs
from ..finetune.trainer import FineTuneConfig, Trainer, pretrain_router
from ..routing.profiler import LocalityProfile, LocalityProfiler
from ..routing.stability import StabilityMonitor, StabilityReport
from ..runtime.metrics import RunMetrics
from .workloads import PaperWorkload, paper_workload, tiny_finetune_workload


# --------------------------------------------------------------------- #
# Fig. 3: expert locality on a live tiny model
# --------------------------------------------------------------------- #
@dataclass
class LocalityExperiment:
    """Results behind Fig. 3(a)-(c) and the Theorem 1 check."""

    profile: LocalityProfile
    access_over_time: np.ndarray     # (steps, experts), monitored layer
    stability: StabilityReport
    losses: np.ndarray

    def frequency_drift(self) -> float:
        """Largest access-frequency change over the run."""
        return self.stability.max_frequency_change()


def run_locality_experiment(finetune_steps: int = 120,
                            pretrain_steps: int = 60,
                            monitored_layer: int = 0,
                            seed: int = 0) -> LocalityExperiment:
    """Pre-train a tiny MoE, profile locality, fine-tune, measure stability.

    Mirrors the paper's Section III protocol: (1) a converged model is
    profiled in inference mode (Fig. 3(a)/(b)); (2) it is then LoRA
    fine-tuned while the first block's gate is monitored (Fig. 3(c)).
    """
    model, loader = tiny_finetune_workload(seed=seed)
    pretrain_router(model, loader, steps=pretrain_steps)

    profiler = LocalityProfiler(model, monitored_layer=monitored_layer)
    profile = profiler.profile(iter(loader), max_batches=8)

    trainer = Trainer(model, loader,
                      FineTuneConfig(steps=finetune_steps, lr=3e-4,
                                     monitored_layer=monitored_layer))
    result = trainer.train()

    monitor = StabilityMonitor(lr=trainer.config.lr)
    freq = result.trace.access_frequency_over_time(monitored_layer)
    for step in range(result.num_steps):
        monitor.observe(
            probs=result.gate_mean_probs[step][None, :],
            access_counts=result.trace.counts[step, monitored_layer],
            total_selections=result.trace.tokens_per_step * result.trace.top_k)
    return LocalityExperiment(profile=profile,
                              access_over_time=freq,
                              stability=monitor.report(),
                              losses=result.losses)


# --------------------------------------------------------------------- #
# Fig. 5 + Fig. 6: traffic and step time across strategies
# --------------------------------------------------------------------- #
@dataclass
class ComparisonExperiment:
    """One (model, dataset) cell of Fig. 5/Fig. 6."""

    workload_name: str
    runs: Dict[str, RunMetrics]

    def traffic_mb_per_node(self) -> Dict[str, float]:
        """Average external traffic per strategy (MB/node/step)."""
        return {name: run.avg_external_traffic_per_node() / 1e6
                for name, run in self.runs.items()}

    def step_times(self) -> Dict[str, float]:
        """Average step time per strategy (seconds)."""
        return {name: run.avg_step_time() for name, run in self.runs.items()}

    def traffic_series_mb(self) -> Dict[str, np.ndarray]:
        """Per-step external-traffic series per strategy (MB)."""
        return {name: run.external_traffic_series() / 1e6
                for name, run in self.runs.items()}

    def traffic_reduction_vs_ep(self) -> float:
        """Fractional traffic reduction of vela vs expert parallelism."""
        return reduction_vs(self.runs, "avg_external_traffic_mb_per_node")

    def time_reduction_vs_ep(self) -> float:
        """Fractional step-time reduction of vela vs expert parallelism."""
        return reduction_vs(self.runs, "avg_step_time_s")


def run_comparison_experiment(model: str = "mixtral",
                              dataset: str = "wikitext",
                              num_steps: int = 100, seed: int = 1,
                              strategies=PAPER_STRATEGIES,
                              workload: Optional[PaperWorkload] = None
                              ) -> ComparisonExperiment:
    """Replay one fine-tuning trace under all placement strategies."""
    workload = workload or paper_workload(model, dataset, seed=seed)
    trace = workload.trace(num_steps)
    runs = compare_strategies(workload.config, trace,
                              workload.probability_matrix,
                              strategies=strategies)
    return ComparisonExperiment(workload_name=workload.name, runs=runs)


# --------------------------------------------------------------------- #
# Fig. 7: access heatmaps
# --------------------------------------------------------------------- #
@dataclass
class HeatmapExperiment:
    """One dataset's access-probability heatmap (a Fig. 7 panel)."""
    workload_name: str
    probability_matrix: np.ndarray   # (layers, experts)

    def concentration(self) -> float:
        """Mean normalized entropy across layers (lower = more skewed)."""
        p = self.probability_matrix / self.probability_matrix.sum(
            axis=1, keepdims=True)
        p = np.clip(p, 1e-12, None)
        entropy = -(p * np.log(p)).sum(axis=1) / np.log(p.shape[1])
        return float(entropy.mean())

    def hot_expert_share(self, top: int = 2) -> float:
        """Fraction of selections captured by each layer's top experts."""
        sorted_p = np.sort(self.probability_matrix, axis=1)
        return float(sorted_p[:, -top:].sum() / self.probability_matrix.sum())


def run_heatmap_experiment(model: str = "mixtral", dataset: str = "wikitext",
                           seed: int = 1) -> HeatmapExperiment:
    """Build the access heatmap for one (model, dataset) pairing."""
    workload = paper_workload(model, dataset, seed=seed)
    return HeatmapExperiment(workload_name=workload.name,
                             probability_matrix=workload.probability_matrix)
