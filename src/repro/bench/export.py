"""Markdown export of evaluation results.

Turns an :class:`~repro.bench.harness.EvaluationReport` into the markdown
tables EXPERIMENTS.md records, so the file can be regenerated from a fresh
run (``python -m repro evaluate --markdown results.md``).
"""

from __future__ import annotations

import os
from typing import List

from .harness import EvaluationReport
from .report import percent


def _markdown_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def report_to_markdown(report: EvaluationReport) -> str:
    """Render a full evaluation as a markdown document."""
    sections = ["# Regenerated evaluation results", ""]

    if report.locality is not None:
        loc = report.locality
        sections += [
            "## Fig. 3 — expert locality (live tiny model)", "",
            _markdown_table(
                ["metric", "measured"],
                [["block-0 access imbalance (max/min)",
                  f"{loc.profile.imbalance_ratio(0):.1f}x"],
                 ["selected-score sums > 0.5",
                  percent(loc.profile.fraction_above(0.5))],
                 ["selected-score sums > 0.7",
                  percent(loc.profile.fraction_above(0.7))],
                 ["max access-frequency drift",
                  f"{loc.frequency_drift():.4f}"],
                 ["Theorem-1 bound violations",
                  str(loc.stability.violations)]]),
            ""]

    if report.comparisons:
        traffic_rows, time_rows = [], []
        for name, exp in report.comparisons.items():
            traffic = exp.traffic_mb_per_node()
            traffic_rows.append(
                [name] + [f"{traffic[k]:.0f}" for k in
                          ("expert_parallel", "sequential", "random", "vela")]
                + [f"-{percent(exp.traffic_reduction_vs_ep())}"])
            times = exp.step_times()
            time_rows.append(
                [name] + [f"{times[k]:.3f}" for k in
                          ("expert_parallel", "sequential", "random", "vela")]
                + [f"-{percent(exp.time_reduction_vs_ep())}"])
        headers = ["workload", "EP", "sequential", "random", "vela",
                   "vela vs EP"]
        sections += ["## Fig. 5 — cross-node traffic per node (MB/step)", "",
                     _markdown_table(headers, traffic_rows), "",
                     "## Fig. 6 — average step time (s)", "",
                     _markdown_table(headers, time_rows), ""]

    if report.heatmaps:
        rows = [[name, f"{exp.concentration():.3f}",
                 percent(exp.hot_expert_share(2))]
                for name, exp in report.heatmaps.items()]
        sections += ["## Fig. 7 — access concentration", "",
                     _markdown_table(["workload", "normalized entropy",
                                      "top-2 share"], rows), ""]

    sections.append(f"_(evaluation wall time: {report.elapsed_s:.1f}s)_")
    return "\n".join(sections)


def write_markdown(report: EvaluationReport, path: str) -> None:
    """Write the markdown rendering to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(report_to_markdown(report) + "\n")
