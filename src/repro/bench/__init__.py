"""Benchmark harness: workloads, per-figure experiments, reporting."""

from .experiments import (ComparisonExperiment, HeatmapExperiment,
                          LocalityExperiment, run_comparison_experiment,
                          run_heatmap_experiment, run_locality_experiment)
from .export import report_to_markdown, write_markdown
from .harness import PAPER_CELLS, EvaluationReport, run_full_evaluation
from .report import format_table, heatmap, histogram, percent, series_panel, sparkline
from .workloads import (MODELS, REGIMES, PaperWorkload, paper_workload,
                        tiny_finetune_workload)

__all__ = [
    "paper_workload", "tiny_finetune_workload", "PaperWorkload",
    "MODELS", "REGIMES",
    "run_locality_experiment", "run_comparison_experiment",
    "run_heatmap_experiment", "LocalityExperiment", "ComparisonExperiment",
    "HeatmapExperiment",
    "run_full_evaluation", "EvaluationReport", "PAPER_CELLS",
    "report_to_markdown", "write_markdown",
    "format_table", "heatmap", "histogram", "sparkline", "series_panel",
    "percent",
]
