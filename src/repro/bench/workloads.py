"""Experiment workload presets.

One place defines the exact (model, dataset, cluster, geometry) combinations
the paper evaluates, so every benchmark and example runs the same setups:

* ``paper_workload("mixtral", "wikitext")`` etc. — the four Fig. 5/6/7
  combinations at trace-simulation scale.
* ``tiny_finetune_workload()`` — the live TinyMistral-style fine-tune behind
  the Fig. 3 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..cluster.presets import paper_cluster
from ..core.config import VelaConfig
from ..data.loader import LMDataLoader
from ..data.shakespeare import generate_tiny_shakespeare
from ..data.tokenizer import CharTokenizer
from ..models.presets import (build_model, gritlm_8x7b_sim, mixtral_8x7b_sim,
                              tiny_mistral)
from ..models.transformer import MoETransformer
from ..routing.synthetic import (ALPACA_REGIME, WIKITEXT_REGIME,
                                 LocalityRegime, SyntheticRouter)

MODELS = {
    "mixtral": mixtral_8x7b_sim,
    "gritlm": gritlm_8x7b_sim,
}

REGIMES = {
    "wikitext": WIKITEXT_REGIME,
    "alpaca": ALPACA_REGIME,
}

# GritLM is Mixtral further instruction-tuned; its gate statistics differ
# from Mixtral's, which we model with a distinct popularity draw (seed
# offset) under the same dataset regime.
_MODEL_SEED_OFFSET = {"mixtral": 0, "gritlm": 100}

DEFAULT_STEPS = 500


@dataclass
class PaperWorkload:
    """A fully materialized Fig. 5/6/7 experiment input."""

    name: str
    config: VelaConfig
    router: SyntheticRouter
    probability_matrix: np.ndarray

    def trace(self, num_steps: int = DEFAULT_STEPS):
        """Generate this workload's routing trace."""
        return self.router.generate_trace(num_steps,
                                          self.config.tokens_per_step)


def paper_workload(model: str = "mixtral", dataset: str = "wikitext",
                   seed: int = 1) -> PaperWorkload:
    """Build one of the paper's four evaluation combinations."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; known: {sorted(MODELS)}")
    if dataset not in REGIMES:
        raise ValueError(f"unknown dataset {dataset!r}; known: {sorted(REGIMES)}")
    model_config = MODELS[model]()
    config = VelaConfig(model=model_config, topology=paper_cluster())
    router = SyntheticRouter(model_config, REGIMES[dataset],
                             seed=seed + _MODEL_SEED_OFFSET[model])
    probability = router.probability_matrix(config.profile_tokens)
    return PaperWorkload(name=f"{model}/{dataset}", config=config,
                         router=router, probability_matrix=probability)


def tiny_finetune_workload(batch_size: int = 8, seq_len: int = 48,
                           seed: int = 0) -> Tuple[MoETransformer, LMDataLoader]:
    """A live TinyMistral-style model plus its Tiny-Shakespeare loader.

    The model is freshly initialized; callers that need a "pre-trained"
    router should run :func:`repro.finetune.pretrain_router` first (the
    Fig. 3 benchmarks do).
    """
    text = generate_tiny_shakespeare(num_turns=300, seed=7)
    tokenizer = CharTokenizer(text)
    config = tiny_mistral(seed=seed).with_overrides(
        vocab_size=tokenizer.vocab_size)
    model = build_model(config)
    loader = LMDataLoader(tokenizer.encode(text), batch_size=batch_size,
                          seq_len=seq_len, seed=seed)
    return model, loader
