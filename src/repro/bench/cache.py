"""On-disk result cache for evaluation cells.

``run_full_evaluation(cache_dir=...)`` stores each experiment's result as a
pickle keyed by a content hash of everything that determines it — model
configuration, cluster topology, trace seed, and step counts — so repeated
figure regeneration is near-free while any input change transparently
invalidates the entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

from ..cluster.topology import ClusterTopology


def topology_fingerprint(topology: ClusterTopology) -> Dict[str, Any]:
    """Content description of a cluster topology (for cache keys)."""
    return {
        "num_nodes": topology.num_nodes,
        "gpus_per_node": topology.gpus_per_node,
        "master_node": topology.master_node,
        "master_gpu": topology.master_gpu,
        "devices": [dataclasses.asdict(w.device) for w in topology.workers],
        "intra_link": dataclasses.asdict(topology.intra_link),
        "cross_link": dataclasses.asdict(topology.cross_link),
        "loopback": dataclasses.asdict(topology.loopback),
    }


def content_key(payload: Dict[str, Any]) -> str:
    """Stable sha256 of a JSON-serializable payload.

    Keys are sorted and separators fixed so logically equal payloads hash
    identically regardless of construction order.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle store addressed by content keys, one file per entry."""

    def __init__(self, cache_dir: Path | str):
        self.root = Path(cache_dir)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None on miss or an unreadable entry."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, key: str, value: Any) -> None:
        """Store a value (atomic: write temp file, then rename)."""
        path = self._path(key)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(value, handle)
        tmp.replace(path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
