"""Plain-text rendering of experiment results: tables, series, heatmaps.

The paper's figures are line charts and heatmaps; these helpers render the
same data as terminal-friendly text so benchmark output is self-contained
(no plotting dependency).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 float_fmt: str = "{:.3f}") -> str:
    """Render rows as an aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Compress a series into a fixed-width unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return ""
    if len(values) > width:
        edges = np.linspace(0, len(values), width + 1).astype(int)
        values = np.array([values[a:b].mean() if b > a else values[min(a, len(values) - 1)]
                           for a, b in zip(edges[:-1], edges[1:])])
    low, high = values.min(), values.max()
    if high - low < 1e-12:
        return blocks[3] * len(values)
    scaled = ((values - low) / (high - low) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in scaled)


def series_panel(series: Dict[str, np.ndarray], unit: str = "",
                 width: int = 60) -> str:
    """Render several labeled series as sparklines with min/mean/max."""
    name_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        values = np.asarray(values, dtype=np.float64)
        lines.append(f"{name.ljust(name_width)}  {sparkline(values, width)}  "
                     f"min={values.min():.4g} mean={values.mean():.4g} "
                     f"max={values.max():.4g} {unit}")
    return "\n".join(lines)


def heatmap(matrix: np.ndarray, row_label: str = "", col_label: str = "",
            max_value: float | None = None) -> str:
    """Render a matrix as a shaded text heatmap (the Fig. 7 visual).

    Rows are matrix rows; darker glyphs mean larger values.
    """
    shades = " .:-=+*#%@"
    matrix = np.asarray(matrix, dtype=np.float64)
    top = max_value if max_value is not None else max(matrix.max(), 1e-12)
    lines = []
    if col_label:
        lines.append(f"      {col_label} ->")
    for r, row in enumerate(matrix):
        cells = "".join(
            shades[min(int(v / top * (len(shades) - 1)), len(shades) - 1)] * 2
            for v in row)
        prefix = f"{row_label}{r:2d} |" if row_label else f"{r:2d} |"
        lines.append(f"{prefix}{cells}|")
    return "\n".join(lines)


def histogram(values: np.ndarray, bins: int = 10, width: int = 40) -> str:
    """Text histogram (used for the Fig. 3(b) score CDF summary)."""
    values = np.asarray(values, dtype=np.float64)
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(count / peak * width)
        lines.append(f"[{lo:6.3f}, {hi:6.3f})  {bar} {count}")
    return "\n".join(lines)


def percent(fraction: float) -> str:
    """Format a fraction as a percent string."""
    return f"{fraction * 100:.1f}%"
