"""The full-evaluation harness: run every paper experiment, print a report.

``run_full_evaluation`` regenerates all figures' data in one call (used by
``examples/`` and to refresh EXPERIMENTS.md); each experiment is also
individually runnable through ``repro.bench.experiments``.

The harness fans independent cells out over processes (``parallel=N``) and
memoizes their results on disk (``cache_dir=...``); results are always
assembled in the fixed ``PAPER_CELLS`` order, so serial, parallel, and
cached runs render byte-identical reports (modulo the optional timing line).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses as _dc
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..cluster.presets import paper_cluster
from .cache import ResultCache, content_key, topology_fingerprint
from .experiments import (ComparisonExperiment, HeatmapExperiment,
                          LocalityExperiment, run_comparison_experiment,
                          run_heatmap_experiment, run_locality_experiment)
from .report import format_table, heatmap, percent, series_panel
from .workloads import MODELS

PAPER_CELLS = [("mixtral", "wikitext"), ("mixtral", "alpaca"),
               ("gritlm", "wikitext"), ("gritlm", "alpaca")]


@dataclass
class EvaluationReport:
    """All experiment outputs plus rendering helpers."""

    locality: Optional[LocalityExperiment] = None
    comparisons: Dict[str, ComparisonExperiment] = field(default_factory=dict)
    heatmaps: Dict[str, HeatmapExperiment] = field(default_factory=dict)
    elapsed_s: float = 0.0

    # ------------------------------------------------------------------ #
    def traffic_table(self) -> str:
        """Fig. 5 summary: avg external traffic per node (MB/step)."""
        headers = ["workload", "EP", "sequential", "random", "vela",
                   "vela vs EP"]
        rows = []
        for name, exp in self.comparisons.items():
            traffic = exp.traffic_mb_per_node()
            rows.append([name, traffic["expert_parallel"],
                         traffic["sequential"], traffic["random"],
                         traffic["vela"],
                         percent(exp.traffic_reduction_vs_ep())])
        return format_table(headers, rows, float_fmt="{:.0f}")

    def time_table(self) -> str:
        """Fig. 6 summary: avg step time (s)."""
        headers = ["workload", "EP", "sequential", "random", "vela",
                   "vela vs EP"]
        rows = []
        for name, exp in self.comparisons.items():
            times = exp.step_times()
            rows.append([name, times["expert_parallel"], times["sequential"],
                         times["random"], times["vela"],
                         percent(exp.time_reduction_vs_ep())])
        return format_table(headers, rows, float_fmt="{:.3f}")

    def render(self, include_timing: bool = True) -> str:
        """Render the report as display text.

        ``include_timing=False`` drops the wall-time footer, making output
        byte-identical across serial, parallel, and cached runs.
        """
        sections: List[str] = []
        if self.locality is not None:
            loc = self.locality
            sections.append("== Fig. 3: expert locality (live tiny model) ==")
            sections.append(
                f"per-layer access imbalance (max/min): "
                f"{loc.profile.imbalance_ratio(0):.1f}x in block 0")
            sections.append(
                f"selected-score sums > 0.5: "
                f"{percent(loc.profile.fraction_above(0.5))}, "
                f"> 0.7: {percent(loc.profile.fraction_above(0.7))}")
            sections.append(
                f"max access-frequency drift over fine-tuning: "
                f"{loc.frequency_drift():.4f}")
        if self.comparisons:
            sections.append("\n== Fig. 5: cross-node traffic per node ==")
            sections.append(self.traffic_table())
            sections.append("\n== Fig. 6: average step time ==")
            sections.append(self.time_table())
        for name, exp in self.heatmaps.items():
            sections.append(f"\n== Fig. 7: access heatmap ({name}) ==")
            sections.append(heatmap(exp.probability_matrix.T,
                                    row_label="e", col_label="layer"))
            sections.append(
                f"normalized entropy {exp.concentration():.3f}, "
                f"top-2 share {percent(exp.hot_expert_share(2))}")
        if include_timing:
            sections.append(
                f"\n(total evaluation time: {self.elapsed_s:.1f}s)")
        return "\n".join(sections)


HEATMAP_CELLS = [("mixtral", "wikitext"), ("mixtral", "alpaca")]

# A cell spec is (kind, model, dataset); locality has no workload.
CellSpec = Tuple[str, Optional[str], Optional[str]]


def _model_fingerprint(model: str) -> Dict[str, Any]:
    """Content description of one paper workload's fixed inputs."""
    return {"model_config": _dc.asdict(MODELS[model]()),
            "topology": topology_fingerprint(paper_cluster())}


def _cell_key(spec: CellSpec, num_steps: int, finetune_steps: int,
              seed: int, locality_seed: int) -> str:
    """Cache key of one cell: content hash of everything that determines it."""
    kind, model, dataset = spec
    payload: Dict[str, Any] = {"kind": kind, "version": 1}
    if kind == "locality":
        payload.update(finetune_steps=finetune_steps, seed=locality_seed)
    else:
        payload.update(model=model, dataset=dataset, seed=seed,
                       **_model_fingerprint(model))
        if kind == "comparison":
            payload.update(num_steps=num_steps)
    return content_key(payload)


def _run_cell(spec: CellSpec, num_steps: int, finetune_steps: int,
              seed: int, locality_seed: int):
    """Execute one evaluation cell (module-level so it pickles to workers)."""
    kind, model, dataset = spec
    if kind == "locality":
        return run_locality_experiment(finetune_steps=finetune_steps,
                                       seed=locality_seed)
    if kind == "comparison":
        return run_comparison_experiment(model, dataset, num_steps=num_steps,
                                         seed=seed)
    if kind == "heatmap":
        return run_heatmap_experiment(model, dataset, seed=seed)
    raise ValueError(f"unknown cell kind {kind!r}")


def run_full_evaluation(num_steps: int = 60, finetune_steps: int = 80,
                        seed: int = 1, locality_seed: int = 0,
                        include_locality: bool = True,
                        parallel: Optional[int] = None,
                        cache_dir: Optional[Union[str, Path]] = None
                        ) -> EvaluationReport:
    """Regenerate the data behind every figure in the paper's evaluation.

    ``locality_seed`` selects the live tiny model for the Fig. 3 study and is
    pinned separately from the trace-simulation ``seed``: the paper measures
    one specific pre-trained checkpoint, and tiny models pre-trained from
    different seeds land at different gate-confidence levels.

    ``parallel=N`` fans the independent cells out over ``N`` worker
    processes; ``cache_dir`` memoizes each cell's result on disk, keyed by a
    content hash of its inputs (see :mod:`repro.bench.cache`).  Results are
    assembled in the fixed cell order regardless of completion order, so
    every execution strategy produces the same report.
    """
    start = time.time()
    specs: List[CellSpec] = []
    if include_locality:
        specs.append(("locality", None, None))
    specs.extend(("comparison", model, dataset)
                 for model, dataset in PAPER_CELLS)
    specs.extend(("heatmap", model, dataset)
                 for model, dataset in HEATMAP_CELLS)

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: Dict[CellSpec, Any] = {}
    pending: List[CellSpec] = []
    for spec in specs:
        cached = None
        if cache is not None:
            cached = cache.get(_cell_key(spec, num_steps, finetune_steps,
                                         seed, locality_seed))
        if cached is not None:
            results[spec] = cached
        else:
            pending.append(spec)

    if parallel is not None and parallel > 1 and len(pending) > 1:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(parallel, len(pending))) as pool:
            futures = {spec: pool.submit(_run_cell, spec, num_steps,
                                         finetune_steps, seed, locality_seed)
                       for spec in pending}
            for spec, future in futures.items():
                results[spec] = future.result()
    else:
        for spec in pending:
            results[spec] = _run_cell(spec, num_steps, finetune_steps, seed,
                                      locality_seed)
    if cache is not None:
        for spec in pending:
            cache.put(_cell_key(spec, num_steps, finetune_steps, seed,
                                locality_seed), results[spec])

    report = EvaluationReport()
    for spec in specs:  # fixed order -> deterministic report
        kind, model, dataset = spec
        if kind == "locality":
            report.locality = results[spec]
        elif kind == "comparison":
            report.comparisons[f"{model}/{dataset}"] = results[spec]
        else:
            report.heatmaps[f"{model}/{dataset}"] = results[spec]
    report.elapsed_s = time.time() - start
    return report
