"""The full-evaluation harness: run every paper experiment, print a report.

``run_full_evaluation`` regenerates all figures' data in one call (used by
``examples/`` and to refresh EXPERIMENTS.md); each experiment is also
individually runnable through ``repro.bench.experiments``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .experiments import (ComparisonExperiment, HeatmapExperiment,
                          LocalityExperiment, run_comparison_experiment,
                          run_heatmap_experiment, run_locality_experiment)
from .report import format_table, heatmap, percent, series_panel

PAPER_CELLS = [("mixtral", "wikitext"), ("mixtral", "alpaca"),
               ("gritlm", "wikitext"), ("gritlm", "alpaca")]


@dataclass
class EvaluationReport:
    """All experiment outputs plus rendering helpers."""

    locality: Optional[LocalityExperiment] = None
    comparisons: Dict[str, ComparisonExperiment] = field(default_factory=dict)
    heatmaps: Dict[str, HeatmapExperiment] = field(default_factory=dict)
    elapsed_s: float = 0.0

    # ------------------------------------------------------------------ #
    def traffic_table(self) -> str:
        """Fig. 5 summary: avg external traffic per node (MB/step)."""
        headers = ["workload", "EP", "sequential", "random", "vela",
                   "vela vs EP"]
        rows = []
        for name, exp in self.comparisons.items():
            traffic = exp.traffic_mb_per_node()
            rows.append([name, traffic["expert_parallel"],
                         traffic["sequential"], traffic["random"],
                         traffic["vela"],
                         percent(exp.traffic_reduction_vs_ep())])
        return format_table(headers, rows, float_fmt="{:.0f}")

    def time_table(self) -> str:
        """Fig. 6 summary: avg step time (s)."""
        headers = ["workload", "EP", "sequential", "random", "vela",
                   "vela vs EP"]
        rows = []
        for name, exp in self.comparisons.items():
            times = exp.step_times()
            rows.append([name, times["expert_parallel"], times["sequential"],
                         times["random"], times["vela"],
                         percent(exp.time_reduction_vs_ep())])
        return format_table(headers, rows, float_fmt="{:.3f}")

    def render(self) -> str:
        """Render the report as display text."""
        sections: List[str] = []
        if self.locality is not None:
            loc = self.locality
            sections.append("== Fig. 3: expert locality (live tiny model) ==")
            sections.append(
                f"per-layer access imbalance (max/min): "
                f"{loc.profile.imbalance_ratio(0):.1f}x in block 0")
            sections.append(
                f"selected-score sums > 0.5: "
                f"{percent(loc.profile.fraction_above(0.5))}, "
                f"> 0.7: {percent(loc.profile.fraction_above(0.7))}")
            sections.append(
                f"max access-frequency drift over fine-tuning: "
                f"{loc.frequency_drift():.4f}")
        if self.comparisons:
            sections.append("\n== Fig. 5: cross-node traffic per node ==")
            sections.append(self.traffic_table())
            sections.append("\n== Fig. 6: average step time ==")
            sections.append(self.time_table())
        for name, exp in self.heatmaps.items():
            sections.append(f"\n== Fig. 7: access heatmap ({name}) ==")
            sections.append(heatmap(exp.probability_matrix.T,
                                    row_label="e", col_label="layer"))
            sections.append(
                f"normalized entropy {exp.concentration():.3f}, "
                f"top-2 share {percent(exp.hot_expert_share(2))}")
        sections.append(f"\n(total evaluation time: {self.elapsed_s:.1f}s)")
        return "\n".join(sections)


def run_full_evaluation(num_steps: int = 60, finetune_steps: int = 80,
                        seed: int = 1, locality_seed: int = 0,
                        include_locality: bool = True) -> EvaluationReport:
    """Regenerate the data behind every figure in the paper's evaluation.

    ``locality_seed`` selects the live tiny model for the Fig. 3 study and is
    pinned separately from the trace-simulation ``seed``: the paper measures
    one specific pre-trained checkpoint, and tiny models pre-trained from
    different seeds land at different gate-confidence levels.
    """
    start = time.time()
    report = EvaluationReport()
    if include_locality:
        report.locality = run_locality_experiment(
            finetune_steps=finetune_steps, seed=locality_seed)
    for model, dataset in PAPER_CELLS:
        key = f"{model}/{dataset}"
        report.comparisons[key] = run_comparison_experiment(
            model, dataset, num_steps=num_steps, seed=seed)
    for model, dataset in (("mixtral", "wikitext"), ("mixtral", "alpaca")):
        key = f"{model}/{dataset}"
        report.heatmaps[key] = run_heatmap_experiment(model, dataset, seed=seed)
    report.elapsed_s = time.time() - start
    return report
