"""The MoE gating mechanism (softmax top-k router).

The gate is the object the whole paper revolves around: its softmax scores
define expert locality (Section III), its stability under fine-tuning is the
subject of Theorem 1, and its per-token decisions generate the communication
workload that VELA's placement optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn.functional import one_hot, softmax, take_along_rows, top_k
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor


@dataclass
class GateOutput:
    """Result of routing a batch of tokens through one gate.

    Attributes
    ----------
    probs:
        Softmax scores over experts, shape ``(tokens, num_experts)``
        (a :class:`Tensor`, gradient-carrying).
    expert_indices:
        Selected expert ids per token, shape ``(tokens, top_k)``, ordered by
        descending score.
    combine_weights:
        Normalized weights of the selected experts (``p_i / sum p_i`` from
        Eq. (1) of the paper), gradient-carrying, shape ``(tokens, top_k)``.
    aux_loss:
        Switch-style load-balancing loss (scalar Tensor) or None.
    """

    probs: Tensor
    expert_indices: np.ndarray
    combine_weights: Tensor
    aux_loss: Optional[Tensor] = None

    @property
    def num_tokens(self) -> int:
        """Token count."""
        return self.expert_indices.shape[0]

    @property
    def top_k(self) -> int:
        """Selections per token."""
        return self.expert_indices.shape[1]

    def selected_score_sums(self) -> np.ndarray:
        """Per-token sum of softmax scores of the selected experts.

        This is the statistic plotted in the paper's Fig. 3(b): a value close
        to 1 means the gate is highly confident in its selection.
        """
        rows = np.arange(self.num_tokens)[:, None]
        return self.probs.data[rows, self.expert_indices].sum(axis=1)

    def access_counts(self, num_experts: int) -> np.ndarray:
        """Number of tokens dispatched to each expert."""
        return np.bincount(self.expert_indices.reshape(-1),
                           minlength=num_experts).astype(np.int64)


class TopKGate(Module):
    """Linear router + softmax + top-k selection.

    Parameters
    ----------
    hidden_size:
        Token feature size.
    num_experts:
        Number of experts this gate routes over.
    top_k:
        Experts selected per token (2 for Mixtral/TinyMistral).
    aux_loss_weight:
        If positive, :meth:`forward` also computes the load-balancing loss
        ``E * sum_e(f_e * m_e)`` (Switch Transformers, Eq. 4) scaled by this
        weight.  The paper keeps the gate frozen during fine-tuning, so the
        aux loss only matters in the pre-training helper.
    """

    def __init__(self, hidden_size: int, num_experts: int, top_k: int,
                 aux_loss_weight: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 1 <= top_k <= num_experts:
            raise ValueError(f"top_k={top_k} out of range for {num_experts} experts")
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.aux_loss_weight = aux_loss_weight
        self.router = Linear(hidden_size, num_experts, bias=False, rng=rng)

    def forward(self, tokens: Tensor) -> GateOutput:
        """Route ``tokens`` of shape ``(num_tokens, hidden_size)``."""
        if tokens.ndim != 2:
            raise ValueError(f"gate expects flattened tokens, got shape {tokens.shape}")
        logits = self.router(tokens)
        probs = softmax(logits, axis=-1)

        _, indices = top_k(probs.data, self.top_k, axis=-1)
        # (tokens, top_k), differentiable; top-k columns are distinct per row
        # so the backward is an assignment scatter, not np.add.at.
        selected = take_along_rows(probs, indices)
        denom = selected.sum(axis=-1, keepdims=True)
        combine = selected / denom

        aux = None
        if self.aux_loss_weight > 0:
            # f_e: fraction of tokens whose top-1 choice is e;
            # m_e: mean router probability of e.  Loss = E * sum_e f_e * m_e.
            top1 = indices[:, 0]
            fractions = one_hot(top1, self.num_experts).mean(axis=0)
            mean_probs = probs.mean(axis=0)
            aux = (mean_probs * Tensor(fractions)).sum() * \
                (self.num_experts * self.aux_loss_weight)

        return GateOutput(probs=probs, expert_indices=indices,
                          combine_weights=combine, aux_loss=aux)
