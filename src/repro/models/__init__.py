"""MoE model zoo: configs, gate, experts, blocks and the full transformer."""

from .config import MoEModelConfig
from .expert import DenseFFN, ExpertFFN
from .generate import decode_routing_counts, generate
from .gating import GateOutput, TopKGate
from .moe_block import BlockRoutingRecord, MoEBlock
from .presets import (build_model, deepseek_moe_sim, gritlm_8x7b_sim,
                      mixtral_8x7b_sim, nano_moe, switch_xxl_sim,
                      tiny_mistral)
from .transformer import MoETransformer, TransformerBlock

__all__ = [
    "MoEModelConfig", "TopKGate", "GateOutput", "ExpertFFN", "DenseFFN",
    "MoEBlock", "BlockRoutingRecord", "TransformerBlock", "MoETransformer",
    "tiny_mistral", "nano_moe", "mixtral_8x7b_sim", "gritlm_8x7b_sim",
    "switch_xxl_sim", "deepseek_moe_sim",
    "build_model", "generate", "decode_routing_counts",
]
