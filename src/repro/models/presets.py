"""Model presets.

``tiny_mistral`` mirrors the routing topology of the TinyMistral-6x248M model
the paper's Section III measures (12 MoE blocks, 6 experts, top-2) at a scale
we can actually fine-tune on CPU.  ``mixtral_8x7b_sim`` / ``gritlm_8x7b_sim``
carry the routing- and communication-relevant dimensions of the paper's
evaluation models (32 blocks, 8 experts, top-2, hidden 4096, fp16 activations)
and are consumed by the trace-level simulator — they are intentionally not
buildable as live numpy models.
"""

from __future__ import annotations

from .config import MoEModelConfig
from .transformer import MoETransformer


def tiny_mistral(seed: int = 0, **overrides) -> MoEModelConfig:
    """TinyMistral-6x248M routing topology at CPU-trainable scale.

    12 MoE blocks x 6 experts, top-2 — identical routing structure to the
    measurement model of the paper's Fig. 3, with hidden sizes shrunk so a
    full fine-tune runs in seconds.
    """
    config = MoEModelConfig(
        name="tiny-mistral-6x",
        vocab_size=96,
        hidden_size=32,
        num_layers=12,
        num_experts=6,
        top_k=2,
        num_heads=4,
        ffn_hidden_size=64,
        max_seq_len=128,
        bits_per_feature=16,
        seed=seed,
    )
    return config.with_overrides(**overrides) if overrides else config


def nano_moe(seed: int = 0, **overrides) -> MoEModelConfig:
    """A minimal 2-block MoE used by fast unit tests."""
    config = MoEModelConfig(
        name="nano-moe",
        vocab_size=64,
        hidden_size=16,
        num_layers=2,
        num_experts=4,
        top_k=2,
        num_heads=2,
        ffn_hidden_size=32,
        max_seq_len=64,
        bits_per_feature=16,
        seed=seed,
    )
    return config.with_overrides(**overrides) if overrides else config


def mixtral_8x7b_sim(seed: int = 0, **overrides) -> MoEModelConfig:
    """Mixtral-8x7B routing/communication spec (trace simulation only).

    32 blocks x 8 experts, top-2, hidden 4096, 16-bit activations — the
    dimensions the paper's Section V traffic arithmetic uses (16.4 MB per
    block exchange, ~866 MB/node/step).
    """
    config = MoEModelConfig(
        name="mixtral-8x7b-sim",
        vocab_size=32000,
        hidden_size=4096,
        num_layers=32,
        num_experts=8,
        top_k=2,
        num_heads=32,
        ffn_hidden_size=14336,
        max_seq_len=4096,
        bits_per_feature=16,
        seed=seed,
    )
    return config.with_overrides(**overrides) if overrides else config


def gritlm_8x7b_sim(seed: int = 0, **overrides) -> MoEModelConfig:
    """GritLM-8x7B spec — architecturally identical to Mixtral-8x7B.

    The paper's GritLM is Mixtral fine-tuned on instruction data; for the
    communication layer only the routing statistics differ, which the
    synthetic router models with a different locality profile.
    """
    config = mixtral_8x7b_sim(seed=seed).with_overrides(name="gritlm-8x7b-sim")
    return config.with_overrides(**overrides) if overrides else config


def switch_xxl_sim(seed: int = 0, **overrides) -> MoEModelConfig:
    """A Switch-Transformer-style spec: many experts, top-1 routing.

    Top-1 routing halves the per-token traffic relative to top-2 but makes
    load concentration extreme — a stress case for the placement LP.
    """
    config = MoEModelConfig(
        name="switch-xxl-sim",
        vocab_size=32000,
        hidden_size=4096,
        num_layers=24,
        num_experts=64,
        top_k=1,
        num_heads=32,
        ffn_hidden_size=10240,
        max_seq_len=2048,
        bits_per_feature=16,
        seed=seed,
    )
    return config.with_overrides(**overrides) if overrides else config


def deepseek_moe_sim(seed: int = 0, **overrides) -> MoEModelConfig:
    """A DeepSeek-MoE-style spec: fine-grained experts, top-6 routing.

    Many small experts with high top-k spread token load widely; the
    architecture sweep uses this as the diffuse extreme.
    """
    config = MoEModelConfig(
        name="deepseek-moe-sim",
        vocab_size=32000,
        hidden_size=2048,
        num_layers=28,
        num_experts=64,
        top_k=6,
        num_heads=16,
        ffn_hidden_size=1408,
        max_seq_len=4096,
        bits_per_feature=16,
        seed=seed,
    )
    return config.with_overrides(**overrides) if overrides else config


def build_model(config: MoEModelConfig) -> MoETransformer:
    """Instantiate a live model from a buildable config."""
    return MoETransformer(config)
