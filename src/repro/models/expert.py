"""Expert feed-forward networks.

Each expert is a SwiGLU FFN, the variant used by the Mistral/Mixtral family:
``out = W2 (silu(W1 x) * W3 x)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.functional import fused_swiglu
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor


class ExpertFFN(Module):
    """A single SwiGLU expert.

    The three projection matrices give the expert ``3 * hidden * ffn_hidden``
    parameters — the quantity the cluster memory model uses to derive worker
    capacities ``C_n``.
    """

    def __init__(self, hidden_size: int, ffn_hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        # Deterministic fallback keeps standalone expert construction
        # reproducible (seed hygiene for benchmarks).
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.ffn_hidden_size = ffn_hidden_size
        self.w_gate = Linear(hidden_size, ffn_hidden_size, bias=False, rng=rng)
        self.w_up = Linear(hidden_size, ffn_hidden_size, bias=False, rng=rng)
        self.w_down = Linear(ffn_hidden_size, hidden_size, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the expert to tokens of shape ``(n, hidden_size)``."""
        return self.w_down(self.w_gate(x).silu() * self.w_up(x))

    def _fusable(self) -> bool:
        # LoRA injection swaps the projections for LoRALinear modules (and
        # future variants may add biases); the fused kernel reads the plain
        # weight matrices directly, so it only applies to the stock layout.
        return all(type(proj) is Linear and proj.bias is None
                   for proj in (self.w_gate, self.w_up, self.w_down))

    def forward_fused(self, x: Tensor) -> Tensor:
        """Apply the expert through the single-node SwiGLU kernel.

        Falls back to the layer-by-layer :meth:`forward` whenever the
        projections are not plain bias-free ``Linear`` layers (e.g. after
        LoRA injection), so callers can use this unconditionally.
        """
        if not self._fusable():
            return self.forward(x)
        return fused_swiglu(x, self.w_gate.weight, self.w_up.weight,
                            self.w_down.weight)

    def num_params(self) -> int:
        """Parameter count."""
        return 3 * self.hidden_size * self.ffn_hidden_size

    def nbytes(self, bytes_per_param: int = 2) -> int:
        """Footprint at a given precision (2 bytes = fp16, as in the paper)."""
        return self.num_params() * bytes_per_param


class DenseFFN(Module):
    """A plain (non-MoE) SwiGLU FFN, used for dense-baseline comparisons."""

    def __init__(self, hidden_size: int, ffn_hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self._expert = ExpertFFN(hidden_size, ffn_hidden_size, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        batch, seq, hidden = x.shape
        flat = x.reshape(batch * seq, hidden)
        return self._expert(flat).reshape(batch, seq, hidden)
