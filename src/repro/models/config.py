"""Model configurations.

A single :class:`MoEModelConfig` describes both the tiny models we actually
instantiate (TinyMistral-style) and the industry-scale models we simulate at
the routing-trace level (Mixtral-8x7B, GritLM-8x7B).  The placement and
communication layers only read the routing-relevant fields (``num_layers``,
``num_experts``, ``top_k``, ``hidden_size``, ``bits_per_feature``), so one
config type serves both uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


# Instantiating a real numpy model above this many parameters is almost
# certainly a mistake (Mixtral-scale configs are trace-simulation only).
_BUILDABLE_PARAM_LIMIT = 50_000_000


@dataclass(frozen=True)
class MoEModelConfig:
    """Architecture description of a sparse MoE transformer.

    Attributes
    ----------
    name:
        Human-readable identifier (appears in experiment reports).
    vocab_size, hidden_size, num_heads, ffn_hidden_size, max_seq_len:
        Standard transformer dimensions.  ``ffn_hidden_size`` is the expert
        FFN's intermediate size.
    num_layers:
        Number of MoE blocks (``L`` in the paper).
    num_experts:
        Experts per block (``E`` in the paper).
    top_k:
        Experts selected per token.
    bits_per_feature:
        Bit depth ``b`` of the activations exchanged between master and
        workers (16 for the paper's mixed-precision setup).
    aux_loss_weight:
        Weight of the Switch-style load-balancing auxiliary loss.  Non-zero
        during pre-training (the paper notes pre-training enforces balance),
        zero during fine-tuning.
    """

    name: str
    vocab_size: int
    hidden_size: int
    num_layers: int
    num_experts: int
    top_k: int
    num_heads: int
    ffn_hidden_size: int
    max_seq_len: int = 512
    bits_per_feature: int = 16
    aux_loss_weight: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k < 1 or self.top_k > self.num_experts:
            raise ValueError(
                f"top_k={self.top_k} must be in [1, num_experts={self.num_experts}]")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        for field_name in ("vocab_size", "hidden_size", "num_layers",
                           "num_experts", "num_heads", "ffn_hidden_size",
                           "max_seq_len", "bits_per_feature"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # ------------------------------------------------------------------ #
    # derived sizes
    # ------------------------------------------------------------------ #
    @property
    def total_experts(self) -> int:
        """Number of expert modules across all blocks (``L * E``)."""
        return self.num_layers * self.num_experts

    def expert_num_params(self) -> int:
        """Parameters of one SwiGLU expert (three weight matrices)."""
        return 3 * self.hidden_size * self.ffn_hidden_size

    def expert_nbytes(self, bytes_per_param: int = 2) -> int:
        """Memory footprint of one expert at the given precision."""
        return self.expert_num_params() * bytes_per_param

    def backbone_num_params(self) -> int:
        """Approximate non-expert parameter count (attention + norms + embeds)."""
        attn = 4 * self.hidden_size * self.hidden_size
        norms = 3 * self.hidden_size
        per_layer = attn + norms
        embeds = self.vocab_size * self.hidden_size * 2 + \
            self.max_seq_len * self.hidden_size
        return self.num_layers * per_layer + embeds + self.hidden_size

    def total_num_params(self) -> int:
        """Approximate full model parameter count."""
        gates = self.num_layers * self.hidden_size * self.num_experts
        return (self.backbone_num_params() + gates
                + self.total_experts * self.expert_num_params())

    def token_feature_nbytes(self) -> float:
        """Bytes transferred per token feature vector (``b * H / 8``)."""
        return self.bits_per_feature * self.hidden_size / 8.0

    # ------------------------------------------------------------------ #
    # guards / helpers
    # ------------------------------------------------------------------ #
    def is_buildable(self) -> bool:
        """Whether this config is small enough to instantiate as a real model."""
        return self.total_num_params() <= _BUILDABLE_PARAM_LIMIT

    def assert_buildable(self) -> None:
        """Raise unless the config is small enough to instantiate."""
        if not self.is_buildable():
            raise ValueError(
                f"config '{self.name}' has ~{self.total_num_params():,} parameters; "
                "it is a trace-simulation spec, not an instantiable model. "
                "Use repro.routing.synthetic for this scale.")

    def with_overrides(self, **kwargs) -> "MoEModelConfig":
        """Return a modified copy (frozen dataclass convenience)."""
        return replace(self, **kwargs)
