"""The MoE block: gate + experts + dispatch/combine.

The forward pass mirrors the paper's Fig. 1 description: the input
``(batch, seq, hidden)`` tensor is flattened to tokens, each token is routed
to its top-k experts, expert outputs are combined with the normalized softmax
weights of Eq. (1), and the output is reshaped back.

Every forward pass can emit a :class:`BlockRoutingRecord`, the raw material
for locality profiling and for the communication simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn.functional import scatter_rows
from ..nn.layers import Module
from ..nn.tensor import Tensor
from .expert import ExpertFFN
from .gating import GateOutput, TopKGate


@dataclass
class BlockRoutingRecord:
    """Routing decisions of one MoE block for one batch.

    ``expert_indices`` has shape ``(tokens, top_k)``;
    ``selected_scores`` are the raw (unnormalized) softmax scores of the
    selected experts; ``probs`` is the full ``(tokens, num_experts)`` softmax
    matrix (detached numpy copies — records never hold autograd graphs).
    """

    layer: int
    expert_indices: np.ndarray
    selected_scores: np.ndarray
    probs: np.ndarray

    @property
    def num_tokens(self) -> int:
        """Token count."""
        return self.expert_indices.shape[0]

    def access_counts(self, num_experts: int) -> np.ndarray:
        """Token selections per expert."""
        return np.bincount(self.expert_indices.reshape(-1),
                           minlength=num_experts).astype(np.int64)

    def tokens_per_expert(self, num_experts: int) -> np.ndarray:
        """Alias for :meth:`access_counts` (the ``K_{n,l}`` inputs of Eq. (6))."""
        return self.access_counts(num_experts)


class MoEBlock(Module):
    """Sparsely activated FFN layer with ``num_experts`` experts.

    Parameters mirror :class:`repro.models.config.MoEModelConfig`.  Set
    ``layer_index`` so emitted routing records identify their block.
    """

    def __init__(self, hidden_size: int, ffn_hidden_size: int, num_experts: int,
                 top_k: int, layer_index: int = 0, aux_loss_weight: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.layer_index = layer_index
        self.gate = TopKGate(hidden_size, num_experts, top_k,
                             aux_loss_weight=aux_loss_weight, rng=rng)
        self.experts = [ExpertFFN(hidden_size, ffn_hidden_size, rng=rng)
                        for _ in range(num_experts)]
        self.last_record: Optional[BlockRoutingRecord] = None
        self.last_aux_loss: Optional[Tensor] = None
        self.record_routing = True

    def forward(self, x: Tensor) -> Tensor:
        """Apply the block to ``(batch, seq, hidden)`` input."""
        batch, seq, hidden = x.shape
        tokens = x.reshape(batch * seq, hidden)
        gate_out: GateOutput = self.gate(tokens)
        self.last_aux_loss = gate_out.aux_loss

        if self.record_routing:
            rows = np.arange(gate_out.num_tokens)[:, None]
            self.last_record = BlockRoutingRecord(
                layer=self.layer_index,
                expert_indices=gate_out.expert_indices.copy(),
                selected_scores=gate_out.probs.data[rows, gate_out.expert_indices].copy(),
                probs=gate_out.probs.data.copy(),
            )

        output = self._dispatch_combine(tokens, gate_out)
        return output.reshape(batch, seq, hidden)

    def _dispatch_combine(self, tokens: Tensor, gate_out: GateOutput) -> Tensor:
        """Send tokens through their selected experts and combine the results.

        Tokens are grouped per (slot, expert) so each expert runs once per
        slot on a contiguous batch — the same "dispatch" structure expert
        parallelism uses, which keeps this faithful to the systems being
        modeled.
        """
        num_tokens = tokens.shape[0]
        contributions: List[Tensor] = []
        for slot in range(self.top_k):
            slot_experts = gate_out.expert_indices[:, slot]
            slot_weights = gate_out.combine_weights[(np.arange(num_tokens),
                                                     np.full(num_tokens, slot))]
            for expert_id in np.unique(slot_experts):
                token_ids = np.nonzero(slot_experts == expert_id)[0]
                expert_in = tokens[token_ids]
                expert_out = self.experts[int(expert_id)](expert_in)
                weights = slot_weights[token_ids].reshape(-1, 1)
                contributions.append(
                    scatter_rows(expert_out * weights, token_ids, num_tokens))
        total = contributions[0]
        for extra in contributions[1:]:
            total = total + extra
        return total

    def expert_modules(self) -> List[ExpertFFN]:
        """The expert submodules, in id order."""
        return list(self.experts)
