"""The MoE block: gate + experts + dispatch/combine.

The forward pass mirrors the paper's Fig. 1 description: the input
``(batch, seq, hidden)`` tensor is flattened to tokens, each token is routed
to its top-k experts, expert outputs are combined with the normalized softmax
weights of Eq. (1), and the output is reshaped back.

Two dispatch implementations are provided:

``fused`` (default)
    One ``argsort`` of the flattened token→expert assignments across all
    top-k slots, one contiguous gather per expert (so each expert runs
    exactly one forward per step, slots merged), and a single-pass combine
    that applies the gate weights and accumulates every contribution into
    one output buffer — the same sort → segment-GEMM → scatter-add layout
    real grouped-GEMM MoE kernels use, and the in-process stand-in for the
    expert-parallel all-to-all the paper's placement work optimizes.

``reference``
    The original per-(slot, expert) loop, kept selectable for A/B testing;
    the equivalence tests pin the two paths to each other.

Every forward pass can emit a :class:`BlockRoutingRecord`, the raw material
for locality profiling and for the communication simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn.functional import index_select, swiglu_infer, top_k
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, is_grad_enabled
from .expert import ExpertFFN
from .gating import GateOutput, TopKGate

DISPATCH_MODES = ("fused", "reference")


@dataclass
class BlockRoutingRecord:
    """Routing decisions of one MoE block for one batch.

    ``expert_indices`` has shape ``(tokens, top_k)``;
    ``selected_scores`` are the raw (unnormalized) softmax scores of the
    selected experts; ``probs`` is the full ``(tokens, num_experts)`` softmax
    matrix (detached numpy copies — records never hold autograd graphs), or
    ``None`` when the emitting block had ``record_probs`` disabled.
    """

    layer: int
    expert_indices: np.ndarray
    selected_scores: np.ndarray
    probs: Optional[np.ndarray] = None

    @property
    def num_tokens(self) -> int:
        """Token count."""
        return self.expert_indices.shape[0]

    def access_counts(self, num_experts: int) -> np.ndarray:
        """Token selections per expert."""
        return np.bincount(self.expert_indices.reshape(-1),
                           minlength=num_experts).astype(np.int64)

    def tokens_per_expert(self, num_experts: int) -> np.ndarray:
        """Alias for :meth:`access_counts` (the ``K_{n,l}`` inputs of Eq. (6))."""
        return self.access_counts(num_experts)


def _combine_segments(seg_outputs: List[Tensor], combine_weights: Tensor,
                      order: np.ndarray, inv_order: np.ndarray,
                      top_k: int, num_tokens: int) -> Tensor:
    """Weighted combine of per-expert output segments, in one pass.

    ``seg_outputs`` are the expert outputs in expert-sorted order (their
    concatenation covers all ``num_tokens * top_k`` dispatch slots);
    ``order`` is the expert-sort permutation of the flattened
    ``(tokens, top_k)`` assignment matrix and ``inv_order`` its inverse.

    Forward applies the gate weights and folds the sorted rows back to
    token-major order, where the top-k contributions of each token are
    adjacent — so the scatter-add over tokens is a reshape + sum, with no
    ``np.add.at``.  Backward is the mirror single pass: one gather of the
    output grad per sorted row, one segment split, one inverse permutation
    for the weight grads.
    """
    cat = (seg_outputs[0].data if len(seg_outputs) == 1 else
           np.concatenate([t.data for t in seg_outputs], axis=0))
    w_sorted = combine_weights.data.reshape(-1)[order]
    hidden = cat.shape[1]
    weighted = cat * w_sorted[:, None]
    out_data = weighted[inv_order].reshape(num_tokens, top_k, hidden).sum(axis=1)
    token_ids = order // top_k
    bounds = np.cumsum([t.data.shape[0] for t in seg_outputs])[:-1]

    def backward(g: np.ndarray):
        g_rows = g[token_ids]                       # (tokens*top_k, hidden)
        g_weights_sorted = np.einsum("ij,ij->i", g_rows, cat)
        g_weights = np.empty(order.size, dtype=g_weights_sorted.dtype)
        g_weights[order] = g_weights_sorted
        g_cat = g_rows * w_sorted[:, None]
        seg_grads = (np.split(g_cat, bounds, axis=0) if len(seg_outputs) > 1
                     else [g_cat])
        return (*seg_grads, g_weights.reshape(num_tokens, top_k))

    return Tensor._make(out_data, (*seg_outputs, combine_weights), backward)


def _scatter_rows_reference(values: Tensor, row_ids: np.ndarray,
                            num_rows: int) -> Tensor:
    """The seed implementation's scatter-add combine (``np.add.at`` based).

    Kept verbatim so ``dispatch="reference"`` A/B-tests against the exact
    original per-(slot, expert) path, including its scatter primitive —
    :func:`repro.nn.functional.scatter_rows` itself has since been
    vectorized.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    out_data = np.zeros((num_rows, values.data.shape[1]),
                        dtype=values.data.dtype)
    np.add.at(out_data, row_ids, values.data)

    def backward(g: np.ndarray):
        return (g[row_ids],)

    return Tensor._make(out_data, (values,), backward)


def fused_dispatch(experts: List[ExpertFFN], tokens: Tensor,
                   gate_out: GateOutput,
                   expert_order: Optional[List[int]] = None) -> Tensor:
    """Run the fused sort → segment-GEMM → combine dispatch.

    ``expert_order`` permutes which expert's segment runs first (the
    runtime's brokered execution iterates experts grouped by hosting
    worker); every ordering feeds each expert the identical contiguous
    batch and sums per-token contributions in the identical slot order, so
    outputs are bit-identical across orderings — the property the paper's
    convergence-equivalence claim (Section V-A) rests on.
    """
    num_tokens = tokens.shape[0]
    num_experts = len(experts)
    top_k = gate_out.top_k
    flat_experts = gate_out.expert_indices.reshape(-1)  # token-major
    sort_order = np.argsort(flat_experts, kind="stable")
    counts = np.bincount(flat_experts, minlength=num_experts)
    starts = np.concatenate([[0], np.cumsum(counts)])
    token_ids_sorted = sort_order // top_k

    seg_outputs: List[Tensor] = []
    seg_slots: List[np.ndarray] = []
    for expert_id in (expert_order if expert_order is not None
                      else range(num_experts)):
        lo, hi = starts[expert_id], starts[expert_id + 1]
        if lo == hi:
            continue
        # Tokens within one expert's segment are pairwise distinct (top-k
        # picks distinct experts per token), so the gather's backward is an
        # assignment scatter.
        expert_in = index_select(tokens, token_ids_sorted[lo:hi],
                                 unique_rows=True)
        run = getattr(experts[expert_id], "forward_fused", experts[expert_id])
        seg_outputs.append(run(expert_in))
        seg_slots.append(sort_order[lo:hi])
    order = (seg_slots[0] if len(seg_slots) == 1
             else np.concatenate(seg_slots))
    inv_order = np.empty_like(order)
    inv_order[order] = np.arange(order.size)
    return _combine_segments(seg_outputs, gate_out.combine_weights,
                             order, inv_order, top_k, num_tokens)


class MoEBlock(Module):
    """Sparsely activated FFN layer with ``num_experts`` experts.

    Parameters mirror :class:`repro.models.config.MoEModelConfig`.  Set
    ``layer_index`` so emitted routing records identify their block.
    ``dispatch`` selects the token dispatch implementation (``"fused"`` or
    ``"reference"``); ``record_probs`` controls whether routing records copy
    the full ``(tokens, num_experts)`` probability matrix (the trainer turns
    this off on unmonitored layers to cut per-step allocation).
    """

    def __init__(self, hidden_size: int, ffn_hidden_size: int, num_experts: int,
                 top_k: int, layer_index: int = 0, aux_loss_weight: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 dispatch: str = "fused", record_probs: bool = True):
        super().__init__()
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {DISPATCH_MODES}, "
                             f"got {dispatch!r}")
        # Deterministic fallback: expert init must be reproducible even when
        # callers omit the generator (seed hygiene for benchmark runs).
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.layer_index = layer_index
        self.dispatch = dispatch
        self.gate = TopKGate(hidden_size, num_experts, top_k,
                             aux_loss_weight=aux_loss_weight, rng=rng)
        self.experts = [ExpertFFN(hidden_size, ffn_hidden_size, rng=rng)
                        for _ in range(num_experts)]
        self.last_record: Optional[BlockRoutingRecord] = None
        self.last_aux_loss: Optional[Tensor] = None
        self.record_routing = True
        self.record_probs = record_probs
        # Optional repro.parallel.ExpertExecutor; when set (and bound for
        # this layer) the fused dispatch fans expert segments out to it.
        self.executor = None

    def make_record(self, gate_out: GateOutput) -> BlockRoutingRecord:
        """Build a routing record from one forward's gate output."""
        rows = np.arange(gate_out.num_tokens)[:, None]
        return BlockRoutingRecord(
            layer=self.layer_index,
            expert_indices=gate_out.expert_indices.copy(),
            selected_scores=gate_out.probs.data[rows, gate_out.expert_indices].copy(),
            probs=gate_out.probs.data.copy() if self.record_probs else None,
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the block to ``(batch, seq, hidden)`` input."""
        batch, seq, hidden = x.shape
        if (seq == 1 and self.dispatch == "fused" and not is_grad_enabled()
                and self._decode_fusable()):
            return self._forward_decode(x)
        tokens = x.reshape(batch * seq, hidden)
        gate_out: GateOutput = self.gate(tokens)
        self.last_aux_loss = gate_out.aux_loss

        if self.record_routing:
            self.last_record = self.make_record(gate_out)

        output = self._dispatch_combine(tokens, gate_out)
        return output.reshape(batch, seq, hidden)

    def _decode_fusable(self) -> bool:
        # The raw decode path reads weight matrices directly, so the gate
        # router and every expert must carry the stock bias-free Linear
        # layout (LoRA injection and future variants fall back to the
        # generic dispatch, which handles any module).
        if not (type(self.gate.router) is Linear
                and self.gate.router.bias is None):
            return False
        return all(e._fusable() for e in self.experts)

    def _forward_decode(self, x: Tensor) -> Tensor:
        """Single-token fast path of the fused dispatch (``seq_len == 1``).

        One decode step routes ``batch`` tokens, each to ``top_k`` experts —
        far too few rows for the sort → segment machinery to pay off.  The
        gate runs as a raw ``(batch, 1, experts)`` top-k (matmul + stable
        softmax + :func:`repro.nn.functional.top_k`) and the combine
        accumulates the ≤ ``batch * top_k`` expert applications slot by
        slot, in the exact slot order the fused combine sums, so outputs
        track the batched path bit for bit up to GEMM-shape rounding.
        Inference-only (gated on gradients being disabled); routing records
        keep flowing so decode streams still feed locality profiling.
        """
        batch, _, hidden = x.shape
        tokens = x.data.reshape(batch, hidden)
        logits = tokens @ self.gate.router.weight.data.T
        shifted = logits - logits.max(axis=-1, keepdims=True)
        np.exp(shifted, out=shifted)
        probs = shifted / shifted.sum(axis=-1, keepdims=True)
        selected, indices = top_k(probs, self.top_k, axis=-1)
        combine = selected / selected.sum(axis=1, keepdims=True)

        self.last_aux_loss = None
        if self.record_routing:
            self.last_record = BlockRoutingRecord(
                layer=self.layer_index,
                expert_indices=indices.copy(),
                selected_scores=selected.copy(),
                probs=probs.copy() if self.record_probs else None,
            )

        out = np.zeros_like(tokens)
        for slot in range(self.top_k):
            slot_experts = indices[:, slot]
            for expert_id in np.unique(slot_experts):
                expert = self.experts[int(expert_id)]
                weights = (expert.w_gate.weight.data, expert.w_up.weight.data,
                           expert.w_down.weight.data)
                if batch == 1:
                    out += combine[0, slot] * swiglu_infer(tokens, *weights)
                else:
                    rows = np.nonzero(slot_experts == expert_id)[0]
                    out[rows] += combine[rows, slot][:, None] * \
                        swiglu_infer(tokens[rows], *weights)
        return Tensor(out.reshape(batch, 1, hidden))

    def _dispatch_combine(self, tokens: Tensor, gate_out: GateOutput) -> Tensor:
        """Send tokens through their selected experts and combine the results."""
        if self.dispatch == "reference":
            return self._dispatch_combine_reference(tokens, gate_out)
        return self._dispatch_combine_fused(tokens, gate_out)

    def _dispatch_combine_fused(self, tokens: Tensor,
                                gate_out: GateOutput) -> Tensor:
        """Sort-by-expert fused dispatch: one forward per expert, one combine.

        The flattened ``(tokens, top_k)`` assignment matrix is argsorted once
        (stable, so same-expert rows keep token order); each expert's rows
        are then a contiguous segment, gathered in one :func:`index_select`
        per expert with all slots merged.  The weighted contributions are
        accumulated by :func:`_combine_segments` in a single pass.

        With an attached :attr:`executor` (see :mod:`repro.parallel`) that
        can serve this layer, the per-expert segments run through the
        executor instead — same structure, workers do the GEMMs.  The
        executor declines (int8 store under gradients, unbound layer) by
        returning ``False`` from ``can_run``, which falls back here.
        """
        executor = self.executor
        if executor is not None and executor.can_run(self.layer_index):
            from ..parallel.dispatch import executor_dispatch
            return executor_dispatch(executor, self.layer_index,
                                     self.experts, tokens, gate_out)
        return fused_dispatch(self.experts, tokens, gate_out)

    def _dispatch_combine_reference(self, tokens: Tensor,
                                    gate_out: GateOutput) -> Tensor:
        """Reference per-(slot, expert) dispatch, kept for A/B testing.

        Tokens are grouped per (slot, expert) so each expert runs once per
        slot on a contiguous batch; every pair materializes a full
        ``(tokens, hidden)`` scatter buffer, summed by a Python reduction.
        """
        num_tokens = tokens.shape[0]
        contributions: List[Tensor] = []
        for slot in range(self.top_k):
            slot_experts = gate_out.expert_indices[:, slot]
            slot_weights = gate_out.combine_weights[(np.arange(num_tokens),
                                                     np.full(num_tokens, slot))]
            for expert_id in np.unique(slot_experts):
                token_ids = np.nonzero(slot_experts == expert_id)[0]
                expert_in = tokens[token_ids]
                expert_out = self.experts[int(expert_id)](expert_in)
                weights = slot_weights[token_ids].reshape(-1, 1)
                contributions.append(_scatter_rows_reference(
                    expert_out * weights, token_ids, num_tokens))
        total = contributions[0]
        for extra in contributions[1:]:
            total = total + extra
        return total

    def expert_modules(self) -> List[ExpertFFN]:
        """The expert submodules, in id order."""
        return list(self.experts)
