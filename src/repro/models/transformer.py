"""The MoE transformer: backbone + detachable expert layers.

:class:`MoETransformer` is a decoder-only language model whose FFN layers are
:class:`~repro.models.moe_block.MoEBlock` instances.  It exposes the
backbone/expert split that VELA's framework design (Section IV-A) relies on:
``backbone_parameters()`` excludes all expert weights, and ``iter_experts()``
enumerates the ``L x E`` expert modules that get distributed to workers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..nn.attention import KVCache, MultiHeadAttention
from ..nn.functional import cross_entropy
from ..nn.layers import Embedding, Linear, Module, Parameter, RMSNorm
from ..nn.tensor import Tensor, is_grad_enabled
from .config import MoEModelConfig
from .expert import ExpertFFN
from .moe_block import BlockRoutingRecord, MoEBlock


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + MoE FFN with residuals."""

    def __init__(self, config: MoEModelConfig, layer_index: int,
                 rng: np.random.Generator):
        super().__init__()
        self.attn_norm = RMSNorm(config.hidden_size)
        self.attn = MultiHeadAttention(config.hidden_size, config.num_heads,
                                       causal=True, rng=rng)
        self.ffn_norm = RMSNorm(config.hidden_size)
        self.moe = MoEBlock(config.hidden_size, config.ffn_hidden_size,
                            config.num_experts, config.top_k,
                            layer_index=layer_index,
                            aux_loss_weight=config.aux_loss_weight, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        x = x + self.attn(self.attn_norm(x))
        x = x + self.moe(self.ffn_norm(x))
        return x

    def forward_incremental(self, x: Tensor, cache: KVCache) -> Tensor:
        """Process only the new positions in ``x``, attending via ``cache``.

        The MoE FFN is position-local, so only attention needs the cache;
        a single-token step automatically takes the fused dispatch's
        ``seq_len == 1`` fast path inside :class:`MoEBlock`.
        """
        x = x + self.attn.forward_incremental(self.attn_norm(x), cache)
        x = x + self.moe(self.ffn_norm(x))
        return x

    def forward_slots(self, x: Tensor, cache: KVCache,
                      slots: np.ndarray) -> Tensor:
        """Per-slot variant of :meth:`forward_incremental`.

        ``x`` row ``i`` continues the sequence in cache slot ``slots[i]``
        at that slot's own cursor (ragged attention); the position-local
        MoE FFN is shared with the uniform path, so a batched decode step
        still takes the ``seq_len == 1`` fused fast path.
        """
        x = x + self.attn.forward_slots(self.attn_norm(x), cache, slots)
        x = x + self.moe(self.ffn_norm(x))
        return x


class MoETransformer(Module):
    """Decoder-only MoE language model.

    Build only from configs that pass ``config.assert_buildable()`` — the
    Mixtral-scale presets are trace-simulation specs (see DESIGN.md §1).
    """

    def __init__(self, config: MoEModelConfig):
        super().__init__()
        config.assert_buildable()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.hidden_size, rng=rng)
        self.position_embedding = Parameter(
            np.zeros((config.max_seq_len, config.hidden_size)))
        self.blocks = [TransformerBlock(config, layer_index=i, rng=rng)
                       for i in range(config.num_layers)]
        self.final_norm = RMSNorm(config.hidden_size)
        self.lm_head = Linear(config.hidden_size, config.vocab_size,
                              bias=False, rng=rng)

    # ------------------------------------------------------------------ #
    # forward / loss
    # ------------------------------------------------------------------ #
    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Return next-token logits for ``token_ids`` of shape ``(batch, seq)``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"expected (batch, seq) token ids, got {token_ids.shape}")
        seq = token_ids.shape[1]
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds max_seq_len "
                             f"{self.config.max_seq_len}")
        x = self.token_embedding(token_ids) + self.position_embedding[:seq]
        for block in self.blocks:
            x = block(x)
        return self.lm_head(self.final_norm(x))

    def new_kv_caches(self, batch: int,
                      max_len: Optional[int] = None) -> List[KVCache]:
        """Allocate one :class:`~repro.nn.attention.KVCache` per block.

        ``max_len`` bounds the total sequence (prompt + generation) the
        caches can hold; it defaults to, and may not exceed, the model's
        ``max_seq_len``.  Pass the caches to :meth:`forward_incremental`.
        """
        config = self.config
        if max_len is None:
            max_len = config.max_seq_len
        if not 1 <= max_len <= config.max_seq_len:
            raise ValueError(f"max_len {max_len} out of range (1, "
                             f"{config.max_seq_len})")
        head_dim = config.hidden_size // config.num_heads
        return [KVCache(batch, max_len, config.num_heads, head_dim)
                for _ in self.blocks]

    def forward_incremental(self, token_ids: np.ndarray,
                            caches: List[KVCache]) -> Tensor:
        """Next-token logits for only the *new* ``token_ids``.

        ``token_ids`` is ``(batch, seq)`` holding positions
        ``[cache.position, cache.position + seq)`` — the whole prompt on
        the prefill pass, one token per decode step.  ``caches`` comes from
        :meth:`new_kv_caches` and is advanced in place.  Inference-only
        (requires gradients disabled); with a full-sequence prefill the
        logits match :meth:`forward` bit for bit, and per-step logits
        agree to ~1e-12 in float64.
        """
        if is_grad_enabled():
            raise RuntimeError("forward_incremental is inference-only; "
                               "wrap the decode loop in no_grad()")
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"expected (batch, seq) token ids, got "
                             f"{token_ids.shape}")
        if len(caches) != len(self.blocks):
            raise ValueError(f"expected {len(self.blocks)} KV caches, "
                             f"got {len(caches)}")
        position = caches[0].position
        if any(c.position != position for c in caches):
            raise ValueError("KV caches are out of sync (differing fill "
                             "cursors); allocate a fresh set per sequence")
        seq = token_ids.shape[1]
        if position + seq > self.config.max_seq_len:
            raise ValueError(f"position {position} + new tokens {seq} "
                             f"exceeds max_seq_len {self.config.max_seq_len}")
        x = self.token_embedding(token_ids) + \
            self.position_embedding[position:position + seq]
        for block, cache in zip(self.blocks, caches):
            x = block.forward_incremental(x, cache)
        return self.lm_head(self.final_norm(x))

    def forward_slots(self, token_ids: np.ndarray, caches: List[KVCache],
                      slots) -> Tensor:
        """Next-token logits for a subset of KV-cache slots (ragged decode).

        ``token_ids`` is ``(len(slots), seq)``: row ``i`` holds the next
        ``seq`` tokens of the request occupying cache slot ``slots[i]``,
        continuing at that slot's own fill cursor — one token per active
        request on a continuous-batching decode step, a whole (equal-
        length) prompt per row on a batched prefill of newly admitted
        requests.  ``caches`` is the shared slot-pool set from
        :meth:`new_kv_caches`; rows not listed in ``slots`` are untouched,
        so waiting requests keep their state while others advance.
        Inference-only.  With uniform cursors this computes bit for bit
        what :meth:`forward_incremental` computes on the same rows.
        """
        if is_grad_enabled():
            raise RuntimeError("forward_slots is inference-only; "
                               "wrap the decode loop in no_grad()")
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"expected (rows, seq) token ids, got "
                             f"{token_ids.shape}")
        if len(caches) != len(self.blocks):
            raise ValueError(f"expected {len(self.blocks)} KV caches, "
                             f"got {len(caches)}")
        slots = np.asarray(slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size != token_ids.shape[0]:
            raise ValueError(f"slots must be 1-D with one entry per row, "
                             f"got shape {slots.shape} for "
                             f"{token_ids.shape[0]} rows")
        positions = caches[0].positions[slots]
        for index, cache in enumerate(caches[1:], start=1):
            if not np.array_equal(cache.positions[slots], positions):
                raise ValueError(f"KV caches are out of sync on the "
                                 f"requested slots (layer {index} differs "
                                 f"from layer 0)")
        seq = token_ids.shape[1]
        if np.any(positions + seq > self.config.max_seq_len):
            worst = int(slots[int(np.argmax(positions))])
            raise ValueError(f"slot {worst}: position "
                             f"{int(positions.max())} + new tokens {seq} "
                             f"exceeds max_seq_len {self.config.max_seq_len}")
        # Per-row position embeddings: row i continues at positions[i].
        pos_rows = self.position_embedding.data[
            positions[:, None] + np.arange(seq)]
        x = Tensor(self.token_embedding(token_ids).data + pos_rows)
        for block, cache in zip(self.blocks, caches):
            x = block.forward_slots(x, cache, slots)
        return self.lm_head(self.final_norm(x))

    def loss(self, token_ids: np.ndarray, targets: np.ndarray) -> Tensor:
        """Cross-entropy LM loss, plus any gate auxiliary losses."""
        logits = self.forward(token_ids)
        loss = cross_entropy(logits, targets)
        for block in self.blocks:
            aux = block.moe.last_aux_loss
            if aux is not None:
                loss = loss + aux
        return loss

    # ------------------------------------------------------------------ #
    # backbone / expert split (VELA Section IV-A)
    # ------------------------------------------------------------------ #
    def iter_experts(self) -> Iterator[Tuple[int, int, ExpertFFN]]:
        """Yield ``(layer, expert_id, module)`` for every expert in the model."""
        for layer, block in enumerate(self.blocks):
            for expert_id, expert in enumerate(block.moe.experts):
                yield layer, expert_id, expert

    def expert_parameters(self) -> List[Parameter]:
        """Parameters belonging to expert layers."""
        params: List[Parameter] = []
        for _, _, expert in self.iter_experts():
            params.extend(expert.parameters())
        return params

    def backbone_parameters(self) -> List[Parameter]:
        """Parameters outside the expert layers."""
        expert_ids = {id(p) for p in self.expert_parameters()}
        return [p for p in self.parameters() if id(p) not in expert_ids]

    def gate_parameters(self) -> List[Parameter]:
        """The (frozen-in-fine-tuning) router parameters."""
        params: List[Parameter] = []
        for block in self.blocks:
            params.extend(block.moe.gate.parameters())
        return params

    # ------------------------------------------------------------------ #
    # routing introspection
    # ------------------------------------------------------------------ #
    def routing_records(self) -> List[BlockRoutingRecord]:
        """Routing records of the most recent forward pass, one per block."""
        records = []
        for block in self.blocks:
            if block.moe.last_record is None:
                raise RuntimeError("no forward pass has been run yet")
            records.append(block.moe.last_record)
        return records

    def _moe_blocks(self) -> List[MoEBlock]:
        """The underlying MoE blocks, unwrapping runtime wrappers."""
        # A BrokeredMoEBlock (repro.runtime.functional_exec) wraps the real
        # block under a ``.block`` attribute; reach through it so mode
        # switches apply to the module that owns the state.
        return [getattr(block.moe, "block", block.moe) for block in self.blocks]

    def set_record_routing(self, enabled: bool) -> None:
        """Enable or disable routing-record capture."""
        for moe in self._moe_blocks():
            moe.record_routing = enabled

    def set_record_probs(self, enabled: bool) -> None:
        """Control whether records copy the full probability matrix."""
        for moe in self._moe_blocks():
            moe.record_probs = enabled

    def set_dispatch_mode(self, mode: str) -> None:
        """Select the MoE dispatch implementation (``"fused"``/``"reference"``)."""
        from .moe_block import DISPATCH_MODES
        if mode not in DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {DISPATCH_MODES}, "
                             f"got {mode!r}")
        for moe in self._moe_blocks():
            moe.dispatch = mode

    def set_expert_executor(self, executor) -> None:
        """Attach (or with ``None`` detach) a :mod:`repro.parallel` executor.

        Every MoE block's fused dispatch will fan its expert segments out
        to the executor when it can serve the layer; the caller owns the
        executor's lifecycle (``bind`` before attaching, ``close`` after
        detaching).
        """
        for moe in self._moe_blocks():
            moe.executor = executor

    # convenient sizes ---------------------------------------------------
    def num_expert_params(self) -> int:
        """Parameter count across all experts."""
        return sum(e.num_params() for _, _, e in self.iter_experts())

    def num_backbone_params(self) -> int:
        """Parameter count of the backbone."""
        return int(sum(p.size for p in self.backbone_parameters()))
