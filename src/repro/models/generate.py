"""Autoregressive text generation from a live MoE transformer.

Used by the examples to show the fine-tuned tiny model actually producing
text, and by the serving simulation to derive decode-time routing patterns
(one token per sequence per step — a very different communication profile
from training).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.functional import softmax
from ..nn.tensor import Tensor, no_grad
from .transformer import MoETransformer


def generate(model: MoETransformer, prompt_ids: np.ndarray, max_new_tokens: int,
             temperature: float = 1.0, top_k: Optional[int] = None,
             seed: int = 0) -> np.ndarray:
    """Sample a continuation of ``prompt_ids``.

    Parameters
    ----------
    prompt_ids:
        1-D integer array of prompt tokens.
    max_new_tokens:
        Tokens to generate.
    temperature:
        Softmax temperature; 0 means greedy decoding.
    top_k:
        If set, sample only among the ``top_k`` most likely tokens.

    Returns the full sequence (prompt + continuation).
    """
    if max_new_tokens < 1:
        raise ValueError("max_new_tokens must be positive")
    if temperature < 0:
        raise ValueError("temperature must be non-negative")
    prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
    if prompt_ids.ndim != 1 or len(prompt_ids) == 0:
        raise ValueError("prompt_ids must be a non-empty 1-D array")

    rng = np.random.default_rng(seed)
    max_ctx = model.config.max_seq_len
    sequence = prompt_ids.tolist()

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for _ in range(max_new_tokens):
                context = np.array(sequence[-max_ctx:], dtype=np.int64)
                logits = model.forward(context[None, :]).data[0, -1]
                sequence.append(_sample_token(logits, temperature, top_k, rng))
    finally:
        model.train(was_training)
    return np.array(sequence, dtype=np.int64)


def _sample_token(logits: np.ndarray, temperature: float,
                  top_k: Optional[int], rng: np.random.Generator) -> int:
    if temperature == 0.0:
        return int(logits.argmax())
    scaled = logits / temperature
    if top_k is not None:
        if top_k < 1:
            raise ValueError("top_k must be positive")
        cutoff = np.sort(scaled)[-min(top_k, len(scaled))]
        scaled = np.where(scaled >= cutoff, scaled, -np.inf)
    shifted = scaled - scaled.max()
    probs = np.exp(shifted)
    probs /= probs.sum()
    return int(rng.choice(len(probs), p=probs))


def decode_routing_counts(model: MoETransformer, prompt_ids: np.ndarray,
                          max_new_tokens: int, seed: int = 0) -> np.ndarray:
    """Per-layer expert access counts accumulated over a decode.

    Decode-time routing drives the serving simulation: each generated token
    makes one routing decision per block (the trailing position).
    """
    prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
    config = model.config
    counts = np.zeros((config.num_layers, config.num_experts), dtype=np.int64)
    max_ctx = config.max_seq_len
    sequence = prompt_ids.tolist()

    rng = np.random.default_rng(seed)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for _ in range(max_new_tokens):
                context = np.array(sequence[-max_ctx:], dtype=np.int64)
                logits = model.forward(context[None, :]).data[0, -1]
                for record in model.routing_records():
                    # trailing position = the token being generated
                    counts[record.layer] += np.bincount(
                        record.expert_indices[-1],
                        minlength=config.num_experts)
                sequence.append(_sample_token(logits, 1.0, None, rng))
    finally:
        model.train(was_training)
    return counts
