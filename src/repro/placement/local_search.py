"""Local-search refinement of rounded placements.

The paper's threshold-rounding is fast but leaves an integrality gap (the
diagnostics in :class:`~repro.placement.vela.PlacementSolution` report ~40 %
on the evaluation workloads).  A standard remedy is local search on the true
binary objective: starting from the rounded solution, greedily apply the
best *move* (re-seat one expert) or *swap* (exchange two experts between
workers) until no move improves Eq. (7).

The search exploits the objective's structure: only the affected layer's
bottleneck changes per move, so each candidate evaluates in O(N) after an
O(N*L*E) precomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy
from .lp import comm_coefficients
from .vela import LocalityAwarePlacement


@dataclass
class RefinementReport:
    """Summary of a refinement pass: objective before/after, actions taken."""
    placement: Placement
    initial_objective: float
    refined_objective: float
    moves_applied: int
    swaps_applied: int

    @property
    def improvement(self) -> float:
        """Fractional objective improvement (0 = none)."""
        if self.initial_objective <= 0:
            return 0.0
        return 1.0 - self.refined_objective / self.initial_objective


class LocalSearchRefiner:
    """Best-improvement hill climbing over moves and swaps."""

    def __init__(self, max_rounds: int = 200):
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.max_rounds = max_rounds

    def refine(self, placement: Placement,
               problem: PlacementProblem) -> RefinementReport:
        """Hill-climb from ``placement``; returns the refined report."""
        coef = comm_coefficients(problem)  # (N, L, E)
        num_workers = problem.num_workers
        layers, experts = placement.num_layers, placement.num_experts
        caps = np.asarray(problem.effective_capacities())
        assignment = placement.assignment.copy()
        loads = np.bincount(assignment.reshape(-1), minlength=num_workers)

        # worker_time[n, l] = sum of coef over experts assigned to n in l.
        worker_time = np.zeros((num_workers, layers))
        for l in range(layers):
            for e in range(experts):
                worker_time[assignment[l, e], l] += coef[assignment[l, e], l, e]

        def layer_max(l: int) -> float:
            return worker_time[:, l].max()

        initial = float(worker_time.max(axis=0).sum())
        moves = swaps = 0
        for _ in range(self.max_rounds):
            best_delta = -1e-15
            best_action: Optional[Tuple] = None
            for l in range(layers):
                current_max = layer_max(l)
                order = np.argsort(-worker_time[:, l])
                bottleneck = order[0]
                # moves: take an expert off the bottleneck worker
                for e in range(experts):
                    if assignment[l, e] != bottleneck:
                        continue
                    for target in range(num_workers):
                        if target == bottleneck or loads[target] >= caps[target]:
                            continue
                        new_src = worker_time[bottleneck, l] - \
                            coef[bottleneck, l, e]
                        new_dst = worker_time[target, l] + coef[target, l, e]
                        others = max((worker_time[n, l]
                                      for n in range(num_workers)
                                      if n not in (bottleneck, target)),
                                     default=0.0)
                        new_max = max(new_src, new_dst, others)
                        delta = current_max - new_max
                        if delta > best_delta:
                            best_delta = delta
                            best_action = ("move", l, e, bottleneck, target)
                # swaps: exchange a bottleneck expert with another worker's
                for e in range(experts):
                    if assignment[l, e] != bottleneck:
                        continue
                    for e2 in range(experts):
                        other = assignment[l, e2]
                        if other == bottleneck:
                            continue
                        new_src = worker_time[bottleneck, l] \
                            - coef[bottleneck, l, e] + coef[bottleneck, l, e2]
                        new_dst = worker_time[other, l] \
                            - coef[other, l, e2] + coef[other, l, e]
                        others_max = max((worker_time[n, l]
                                          for n in range(num_workers)
                                          if n not in (bottleneck, other)),
                                         default=0.0)
                        new_max = max(new_src, new_dst, others_max)
                        delta = current_max - new_max
                        if delta > best_delta:
                            best_delta = delta
                            best_action = ("swap", l, e, bottleneck, e2, other)
            if best_action is None or best_delta <= 1e-15:
                break
            if best_action[0] == "move":
                _, l, e, src, dst = best_action
                assignment[l, e] = dst
                worker_time[src, l] -= coef[src, l, e]
                worker_time[dst, l] += coef[dst, l, e]
                loads[src] -= 1
                loads[dst] += 1
                moves += 1
            else:
                _, l, e, src, e2, dst = best_action
                assignment[l, e] = dst
                assignment[l, e2] = src
                worker_time[src, l] += coef[src, l, e2] - coef[src, l, e]
                worker_time[dst, l] += coef[dst, l, e] - coef[dst, l, e2]
                swaps += 1

        refined = float(worker_time.max(axis=0).sum())
        return RefinementReport(
            placement=Placement(assignment,
                                capacities=problem.effective_capacities(),
                                name=f"{placement.name}+ls"),
            initial_objective=initial, refined_objective=refined,
            moves_applied=moves, swaps_applied=swaps)


class RefinedLocalityPlacement(PlacementStrategy):
    """VELA's LP + rounding, then local-search refinement."""

    name = "vela+ls"

    def __init__(self, base: Optional[PlacementStrategy] = None,
                 max_rounds: int = 200):
        self.base = base or LocalityAwarePlacement()
        self.refiner = LocalSearchRefiner(max_rounds=max_rounds)

    def solve(self, problem: PlacementProblem) -> RefinementReport:
        """Solve and return the full diagnostic report."""
        return self.refiner.refine(self.base.place(problem), problem)

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        return self.solve(problem).placement
