"""Local-search refinement of rounded placements.

The paper's threshold-rounding is fast but leaves an integrality gap (the
diagnostics in :class:`~repro.placement.vela.PlacementSolution` report ~40 %
on the evaluation workloads).  A standard remedy is local search on the true
binary objective: starting from the rounded solution, greedily apply the
best *move* (re-seat one expert) or *swap* (exchange two experts between
workers) until no move improves Eq. (7).

The search exploits the objective's structure: only the affected layer's
bottleneck changes per move, so each candidate evaluates in O(N) after an
O(N*L*E) precomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy
from .lp import comm_coefficients, problem_from_window
from .vela import LocalityAwarePlacement


@dataclass
class RefinementReport:
    """Summary of a refinement pass: objective before/after, actions taken.

    ``actions`` is the applied sequence in order — ``("move", layer,
    expert, src, dst)`` and ``("swap", layer, expert, src, expert2,
    dst)`` tuples — so a caller can replay any prefix of the climb
    (online re-placement truncates it at the profit-maximizing prefix).
    """
    placement: Placement
    initial_objective: float
    refined_objective: float
    moves_applied: int
    swaps_applied: int
    actions: List[Tuple] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional objective improvement (0 = none)."""
        if self.initial_objective <= 0:
            return 0.0
        return 1.0 - self.refined_objective / self.initial_objective


class LocalSearchRefiner:
    """Best-improvement hill climbing over moves and swaps.

    ``mode="vectorized"`` (the default) evaluates every candidate move and
    swap of a round as numpy delta grids; ``mode="reference"`` keeps the
    original per-candidate Python scan.  Both visit candidates in the same
    order with the same strict-improvement tie-breaks, so they apply
    identical action sequences.
    """

    MODES = ("vectorized", "reference")

    def __init__(self, max_rounds: int = 200, mode: str = "vectorized"):
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; known: {self.MODES}")
        self.max_rounds = max_rounds
        self.mode = mode

    # ------------------------------------------------------------------ #
    # candidate search
    # ------------------------------------------------------------------ #
    def _best_action_reference(self, assignment, worker_time, loads, caps,
                               coef):
        """One round's best candidate: the original per-candidate scan."""
        num_workers, layers = worker_time.shape
        experts = assignment.shape[1]
        best_delta = -1e-15
        best_action: Optional[Tuple] = None
        for l in range(layers):
            current_max = worker_time[:, l].max()
            order = np.argsort(-worker_time[:, l])
            bottleneck = order[0]
            # moves: take an expert off the bottleneck worker
            for e in range(experts):
                if assignment[l, e] != bottleneck:
                    continue
                for target in range(num_workers):
                    if target == bottleneck or loads[target] >= caps[target]:
                        continue
                    new_src = worker_time[bottleneck, l] - \
                        coef[bottleneck, l, e]
                    new_dst = worker_time[target, l] + coef[target, l, e]
                    others = max((worker_time[n, l]
                                  for n in range(num_workers)
                                  if n not in (bottleneck, target)),
                                 default=0.0)
                    new_max = max(new_src, new_dst, others)
                    delta = current_max - new_max
                    if delta > best_delta:
                        best_delta = delta
                        best_action = ("move", l, e, bottleneck, target)
            # swaps: exchange a bottleneck expert with another worker's
            for e in range(experts):
                if assignment[l, e] != bottleneck:
                    continue
                for e2 in range(experts):
                    other = assignment[l, e2]
                    if other == bottleneck:
                        continue
                    new_src = worker_time[bottleneck, l] \
                        - coef[bottleneck, l, e] + coef[bottleneck, l, e2]
                    new_dst = worker_time[other, l] \
                        - coef[other, l, e2] + coef[other, l, e]
                    others_max = max((worker_time[n, l]
                                      for n in range(num_workers)
                                      if n not in (bottleneck, other)),
                                     default=0.0)
                    new_max = max(new_src, new_dst, others_max)
                    delta = current_max - new_max
                    if delta > best_delta:
                        best_delta = delta
                        best_action = ("swap", l, e, bottleneck, e2, other)
        return best_delta, best_action

    def _best_action_vectorized(self, assignment, worker_time, loads, caps,
                                coef):
        """One round's best candidate, as per-layer numpy delta grids.

        Candidate order (layers ascending; per layer all moves in (expert,
        target) row-major order, then all swaps in (expert, expert) row-major
        order) and strict-``>`` tie-breaking match the reference scan, so the
        same action wins.
        """
        num_workers, layers = worker_time.shape
        best_delta = -1e-15
        best_action: Optional[Tuple] = None
        worker_ids = np.arange(num_workers)
        for l in range(layers):
            wt = worker_time[:, l]
            current_max = wt.max()
            order = np.argsort(-wt)
            bottleneck = order[0]
            # Max over workers excluding {bottleneck, x} for any second
            # exclusion x: the runner-up unless x *is* the runner-up, then
            # the third-best (0.0 when fewer than three workers exist).
            runner_up = wt[order[1]] if num_workers > 1 else 0.0
            third = wt[order[2]] if num_workers > 2 else 0.0

            def others_excluding(x):
                return np.where(order[1] == x, third, runner_up)

            src_experts = np.flatnonzero(assignment[l] == bottleneck)
            coef_l = coef[:, l, :]                        # (N, E)

            # moves: (src expert, target worker) grid
            targets = np.flatnonzero((worker_ids != bottleneck)
                                     & (loads < caps))
            if src_experts.size and targets.size:
                new_src = wt[bottleneck] - coef_l[bottleneck, src_experts]
                new_dst = wt[targets][None, :] + \
                    coef_l[targets][:, src_experts].T     # (Eb, T)
                new_max = np.maximum(np.maximum(new_src[:, None], new_dst),
                                     others_excluding(targets)[None, :])
                delta = current_max - new_max
                flat = int(np.argmax(delta))
                cand = float(delta.reshape(-1)[flat])
                if cand > best_delta:
                    e = int(src_experts[flat // targets.size])
                    target = int(targets[flat % targets.size])
                    best_delta = cand
                    best_action = ("move", l, e, bottleneck, target)

            # swaps: (src expert, other-worker expert) grid
            other_experts = np.flatnonzero(assignment[l] != bottleneck)
            if src_experts.size and other_experts.size:
                owners = assignment[l, other_experts]
                new_src = (wt[bottleneck]
                           - coef_l[bottleneck, src_experts][:, None]
                           + coef_l[bottleneck, other_experts][None, :])
                new_dst = (wt[owners] - coef_l[owners, other_experts])[None, :] \
                    + coef_l[owners][:, src_experts].T    # (Eb, Eo)
                new_max = np.maximum(np.maximum(new_src, new_dst),
                                     others_excluding(owners)[None, :])
                delta = current_max - new_max
                flat = int(np.argmax(delta))
                cand = float(delta.reshape(-1)[flat])
                if cand > best_delta:
                    e = int(src_experts[flat // other_experts.size])
                    e2 = int(other_experts[flat % other_experts.size])
                    best_delta = cand
                    best_action = ("swap", l, e, bottleneck, e2,
                                   int(assignment[l, e2]))
        return best_delta, best_action

    def refine(self, placement: Placement,
               problem: PlacementProblem) -> RefinementReport:
        """Hill-climb from ``placement``; returns the refined report."""
        coef = comm_coefficients(problem)  # (N, L, E)
        num_workers = problem.num_workers
        layers, experts = placement.num_layers, placement.num_experts
        caps = np.asarray(problem.effective_capacities())
        assignment = placement.assignment.copy()
        loads = np.bincount(assignment.reshape(-1), minlength=num_workers)

        # worker_time[n, l] = sum of coef over experts assigned to n in l.
        worker_time = np.zeros((num_workers, layers))
        for l in range(layers):
            for e in range(experts):
                worker_time[assignment[l, e], l] += coef[assignment[l, e], l, e]

        search = (self._best_action_vectorized if self.mode == "vectorized"
                  else self._best_action_reference)
        initial = float(worker_time.max(axis=0).sum())
        moves = swaps = 0
        actions: List[Tuple] = []
        for _ in range(self.max_rounds):
            best_delta, best_action = search(assignment, worker_time, loads,
                                             caps, coef)
            if best_action is None or best_delta <= 1e-15:
                break
            # plain-int tuples: replayable, JSON-friendly, clean reprs
            best_action = (best_action[0],
                           *(int(x) for x in best_action[1:]))
            actions.append(best_action)
            if best_action[0] == "move":
                _, l, e, src, dst = best_action
                assignment[l, e] = dst
                worker_time[src, l] -= coef[src, l, e]
                worker_time[dst, l] += coef[dst, l, e]
                loads[src] -= 1
                loads[dst] += 1
                moves += 1
            else:
                _, l, e, src, e2, dst = best_action
                assignment[l, e] = dst
                assignment[l, e2] = src
                worker_time[src, l] += coef[src, l, e2] - coef[src, l, e]
                worker_time[dst, l] += coef[dst, l, e] - coef[dst, l, e2]
                swaps += 1

        refined = float(worker_time.max(axis=0).sum())
        return RefinementReport(
            placement=Placement(assignment,
                                capacities=problem.effective_capacities(),
                                name=f"{placement.name}+ls"),
            initial_objective=initial, refined_objective=refined,
            moves_applied=moves, swaps_applied=swaps, actions=actions)

    def refine_from_window(self, placement: Placement, config, topology,
                           window, **problem_kwargs) -> RefinementReport:
        """Refine against a recent routing window instead of a profile.

        The online re-placement entry point: ``window`` is anything
        :func:`~repro.placement.lp.problem_from_window` accepts (a
        :class:`~repro.placement.replan.RoutingWindow`, a trace, or a raw
        count array); keyword arguments (``tokens_per_step``,
        ``capacities``, ...) pass through to the problem.
        """
        problem = problem_from_window(config, topology, window,
                                      **problem_kwargs)
        return self.refine(placement, problem)


class RefinedLocalityPlacement(PlacementStrategy):
    """VELA's LP + rounding, then local-search refinement."""

    name = "vela+ls"

    def __init__(self, base: Optional[PlacementStrategy] = None,
                 max_rounds: int = 200):
        self.base = base or LocalityAwarePlacement()
        self.refiner = LocalSearchRefiner(max_rounds=max_rounds)

    def solve(self, problem: PlacementProblem) -> RefinementReport:
        """Solve and return the full diagnostic report."""
        return self.refiner.refine(self.base.place(problem), problem)

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        return self.solve(problem).placement
