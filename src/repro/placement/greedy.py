"""Greedy locality-aware placement (ablation baseline).

A max-min LPT-style heuristic: within each block, experts are seated in
decreasing order of expected load, each onto the worker that minimizes the
block's resulting bottleneck time, subject to global capacities.  It uses the
same locality information as the LP but no global optimization — quantifying
what the LP formulation itself contributes (DESIGN.md ablation 2).
"""

from __future__ import annotations

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy
from .lp import comm_coefficients


class GreedyPlacement(PlacementStrategy):
    """Longest-processing-time-first greedy over per-block bottlenecks."""

    name = "greedy"

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        config = problem.config
        num_workers = problem.num_workers
        layers, experts = config.num_layers, config.num_experts
        coef = comm_coefficients(problem)  # (N, L, E) seconds if assigned
        caps = np.array(problem.effective_capacities(), dtype=np.int64)
        loads = np.zeros(num_workers, dtype=np.int64)
        assignment = np.full((layers, experts), -1, dtype=np.int64)

        # Process layers in order of total expected load (heaviest first) so
        # the most communication-critical blocks see the freshest capacity.
        p = problem.probability_matrix
        layer_order = np.argsort(-p.sum(axis=1))
        for layer in layer_order:
            worker_time = np.zeros(num_workers)
            expert_order = np.argsort(-p[layer])
            for expert in expert_order:
                best_worker, best_bottleneck = -1, np.inf
                for worker in range(num_workers):
                    if loads[worker] >= caps[worker]:
                        continue
                    candidate = worker_time[worker] + coef[worker, layer, expert]
                    bottleneck = max(worker_time.max(), candidate)
                    # Tie-break toward the worker with more residual capacity
                    # per remaining layer, keeping later layers feasible.
                    if bottleneck < best_bottleneck - 1e-15:
                        best_bottleneck = bottleneck
                        best_worker = worker
                if best_worker < 0:
                    raise ValueError("capacities exhausted during greedy placement")
                assignment[layer, expert] = best_worker
                worker_time[best_worker] += coef[best_worker, layer, expert]
                loads[best_worker] += 1

        return Placement(assignment, capacities=caps.tolist(), name=self.name)
