"""Expert placement strategies (the paper's Section IV-B and baselines)."""

from .base import Placement, PlacementProblem, PlacementStrategy
from .expert_parallel import ExpertParallelPlacement
from .greedy import GreedyPlacement
from .hierarchical import HierarchicalPlacement
from .local_search import (LocalSearchRefiner, RefinedLocalityPlacement,
                           RefinementReport)
from .lp import (PlacementLP, build_placement_lp, comm_coefficients,
                 problem_from_window, solve_lp_scipy)
from .milp import ExactMILPPlacement
from .objective import (expected_cross_node_bytes, expected_step_comm_time,
                        expected_worker_times, relaxed_objective)
from .io import load_placement, save_placement
from .random_ import RandomPlacement
from .replan import (BreakEvenReport, ExpertMove, MigrationPlan,
                     RESOLVE_MODES, ReplacementController, ReplanConfig,
                     ReplanDecision, RoutingWindow, TRIGGER_POLICIES,
                     plan_migration)
from .replication import (FrozenPlacementStrategy, ReplicatedPlacement,
                          ReplicationReport, ReplicationStrategy,
                          expected_step_comm_time_replicated)
from .rounding import round_relaxed_assignment, rounding_gap
from .sequential import SequentialPlacement
from .simplex import SimplexError, simplex_solve
from .vela import LocalityAwarePlacement, PlacementSolution, solve_lp_simplex

__all__ = [
    "Placement", "PlacementProblem", "PlacementStrategy",
    "SequentialPlacement", "RandomPlacement", "ExpertParallelPlacement",
    "GreedyPlacement", "ExactMILPPlacement", "LocalityAwarePlacement",
    "HierarchicalPlacement", "RefinedLocalityPlacement",
    "LocalSearchRefiner", "RefinementReport",
    "PlacementSolution", "PlacementLP", "build_placement_lp",
    "comm_coefficients", "solve_lp_scipy", "solve_lp_simplex",
    "round_relaxed_assignment", "rounding_gap",
    "expected_step_comm_time", "expected_worker_times",
    "expected_cross_node_bytes", "relaxed_objective",
    "simplex_solve", "SimplexError",
    "save_placement", "load_placement",
    "ReplicatedPlacement", "ReplicationStrategy", "ReplicationReport",
    "FrozenPlacementStrategy", "expected_step_comm_time_replicated",
    "problem_from_window", "RoutingWindow", "ExpertMove", "MigrationPlan",
    "plan_migration", "BreakEvenReport", "ReplanConfig", "ReplanDecision",
    "ReplacementController", "TRIGGER_POLICIES", "RESOLVE_MODES",
]
