"""The paper's LP transformation of the expert-placement problem.

Section IV-B formulates placement as

    min   sum_l  max_n ( (b*H / 4*B_n) * sum_e X[n,l,e] * P[l,e] * K )
    s.t.  sum_n X[n,l,e] = 1            for every expert (l, e)
          sum_{l,e} X[n,l,e] <= C_n     for every worker n
          X[n,l,e] in {0, 1}

and linearizes it by (1) replacing each layer's max with an auxiliary
variable ``lambda_l`` bounded below by every worker's expected communication
time, and (2) relaxing the binary constraint to ``0 <= X <= 1``.

This module builds that LP in standard ``scipy.optimize.linprog`` form.  The
variable vector is ``[X.flatten(order=(n,l,e)), lambda_0..lambda_{L-1}]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from .base import PlacementProblem


@dataclass
class PlacementLP:
    """A built LP instance, ready for any solver.

    ``A_ub x <= b_ub``, ``A_eq x = b_eq``, bounds ``lower <= x <= upper``,
    objective ``min c @ x``.  The first ``N*L*E`` variables are the relaxed
    assignment tensor (``order='C'`` over ``(n, l, e)``); the last ``L`` are
    the per-layer auxiliary maxima.
    """

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    num_workers: int
    num_layers: int
    num_experts: int
    cost_scale: float = 1.0

    @property
    def num_assignment_vars(self) -> int:
        """Count of relaxed assignment variables (N*L*E)."""
        return self.num_workers * self.num_layers * self.num_experts

    @property
    def num_vars(self) -> int:
        """Total LP variables (assignments + per-layer maxima)."""
        return self.num_assignment_vars + self.num_layers

    def var_index(self, worker: int, layer: int, expert: int) -> int:
        """Flat index of ``X[worker, layer, expert]``."""
        return (worker * self.num_layers + layer) * self.num_experts + expert

    def lambda_index(self, layer: int) -> int:
        """Flat index of a layer's auxiliary maximum variable."""
        return self.num_assignment_vars + layer

    def extract_assignment(self, solution: np.ndarray) -> np.ndarray:
        """Reshape a solution vector into the relaxed ``X[n, l, e]`` tensor."""
        x = solution[:self.num_assignment_vars]
        return x.reshape(self.num_workers, self.num_layers, self.num_experts)

    def objective_value(self, solution: np.ndarray) -> float:
        """True objective in seconds (undoes the internal normalization)."""
        return float(self.c @ solution) * self.cost_scale


def problem_from_window(config, topology, window, *,
                        tokens_per_step: int = 4096,
                        capacities: Optional[Sequence[int]] = None,
                        bandwidth_override: Optional[Sequence[float]] = None
                        ) -> PlacementProblem:
    """Build a :class:`PlacementProblem` from recent routing statistics.

    ``window`` is any source of routing counts: a
    :class:`~repro.placement.replan.RoutingWindow` (anything with a
    ``total()`` method), a :class:`~repro.routing.trace.RoutingTrace`
    (anything with a ``counts`` array), or a raw ``(layers, experts)`` /
    ``(steps, layers, experts)`` array.  The summed counts are normalized
    into a locality profile whose rows sum to ``config.top_k`` — the same
    convention as ``RoutingTrace.probability_matrix`` — with a uniform
    fallback for layers that routed nothing.  This is the online
    re-placement entry point: the profiling pass's probability matrix,
    measured on recent traffic instead of pre-fine-tuning traffic.
    """
    if hasattr(window, "total"):
        counts = np.asarray(window.total(), dtype=np.float64)
    elif hasattr(window, "counts"):
        counts = np.asarray(window.counts, dtype=np.float64)
    else:
        counts = np.asarray(window, dtype=np.float64)
    if counts.ndim == 3:
        counts = counts.sum(axis=0)
    expected = (config.num_layers, config.num_experts)
    if counts.shape != expected:
        raise ValueError(f"window counts shape {counts.shape} != {expected}")
    row_mass = counts.sum(axis=1, keepdims=True)
    uniform = np.full_like(counts, 1.0 / config.num_experts)
    with np.errstate(invalid="ignore", divide="ignore"):
        profile = np.where(row_mass > 0, counts / np.where(
            row_mass > 0, row_mass, 1.0), uniform)
    return PlacementProblem(config=config, topology=topology,
                            probability_matrix=profile * config.top_k,
                            tokens_per_step=tokens_per_step,
                            capacities=capacities,
                            bandwidth_override=bandwidth_override)


def comm_coefficients(problem: PlacementProblem) -> np.ndarray:
    """Per-(worker, layer, expert) expected communication seconds.

    ``coef[n, l, e] = (b*H / (4*B_n)) * P[l, e] * K`` — the contribution of
    assigning expert ``(l, e)`` to worker ``n``, from Eq. (6).
    """
    if problem.probability_matrix is None:
        raise ValueError("locality-aware placement needs a probability matrix")
    config = problem.config
    p = np.asarray(problem.probability_matrix, dtype=np.float64)
    bandwidths = np.asarray(problem.effective_bandwidths())
    per_token_time = (config.bits_per_feature * config.hidden_size
                      / 4.0) / bandwidths  # (N,), seconds per token unit
    return per_token_time[:, None, None] * p[None, :, :] * problem.tokens_per_step


def build_placement_lp(problem: PlacementProblem) -> PlacementLP:
    """Construct the relaxed LP for a placement problem."""
    config = problem.config
    n_workers = problem.num_workers
    layers, experts = config.num_layers, config.num_experts
    n_x = n_workers * layers * experts
    n_vars = n_x + layers

    coef = comm_coefficients(problem)
    # Communication times are ~1e-8..1e-3 seconds; normalize so the solver
    # works at O(1) magnitudes (its feasibility tolerances are absolute).
    cost_scale = float(coef.max()) or 1.0
    coef = coef / cost_scale

    def xi(worker: int, layer: int, expert: int) -> int:
        return (worker * layers + layer) * experts + expert

    # Objective: minimize sum of lambdas.
    c = np.zeros(n_vars)
    c[n_x:] = 1.0

    # Equality: each expert assigned exactly once -> L*E rows.
    eq_rows, eq_cols, eq_vals = [], [], []
    row = 0
    for layer in range(layers):
        for expert in range(experts):
            for worker in range(n_workers):
                eq_rows.append(row)
                eq_cols.append(xi(worker, layer, expert))
                eq_vals.append(1.0)
            row += 1
    a_eq = sparse.csr_matrix((eq_vals, (eq_rows, eq_cols)),
                             shape=(row, n_vars))
    b_eq = np.ones(row)

    # Inequalities: capacity rows (N) + lambda rows (N*L).
    ub_rows, ub_cols, ub_vals = [], [], []
    b_ub: List[float] = []
    row = 0
    capacities = problem.effective_capacities()
    for worker in range(n_workers):
        for layer in range(layers):
            for expert in range(experts):
                ub_rows.append(row)
                ub_cols.append(xi(worker, layer, expert))
                ub_vals.append(1.0)
        b_ub.append(float(capacities[worker]))
        row += 1
    # (b*H / 4*B_n) * sum_e X[n,l,e] P[l,e] K - lambda_l <= 0
    for worker in range(n_workers):
        for layer in range(layers):
            for expert in range(experts):
                ub_rows.append(row)
                ub_cols.append(xi(worker, layer, expert))
                ub_vals.append(coef[worker, layer, expert])
            ub_rows.append(row)
            ub_cols.append(n_x + layer)
            ub_vals.append(-1.0)
            b_ub.append(0.0)
            row += 1
    a_ub = sparse.csr_matrix((ub_vals, (ub_rows, ub_cols)),
                             shape=(row, n_vars))

    lower = np.zeros(n_vars)
    upper = np.concatenate([np.ones(n_x), np.full(layers, np.inf)])

    return PlacementLP(c=c, a_ub=a_ub, b_ub=np.array(b_ub), a_eq=a_eq,
                       b_eq=b_eq, lower=lower, upper=upper,
                       num_workers=n_workers, num_layers=layers,
                       num_experts=experts, cost_scale=cost_scale)


def solve_lp_scipy(lp: PlacementLP) -> np.ndarray:
    """Solve with scipy's HiGHS backend; returns the full variable vector."""
    from scipy.optimize import linprog

    bounds = list(zip(lp.lower, [None if np.isinf(u) else u for u in lp.upper]))
    result = linprog(lp.c, A_ub=lp.a_ub, b_ub=lp.b_ub, A_eq=lp.a_eq,
                     b_eq=lp.b_eq, bounds=bounds, method="highs")
    if not result.success:
        raise RuntimeError(f"LP solve failed: {result.message}")
    return result.x
