"""VELA's locality-aware expert placement (the paper's core algorithm).

Pipeline: build the relaxed LP (Section IV-B) -> solve (HiGHS by default, or
the built-in simplex) -> round with the paper's three-step procedure ->
validated :class:`~repro.placement.base.Placement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy
from .lp import PlacementLP, build_placement_lp, solve_lp_scipy
from .objective import expected_step_comm_time, relaxed_objective
from .rounding import round_relaxed_assignment
from .simplex import simplex_solve


@dataclass
class PlacementSolution:
    """Diagnostics of a locality-aware placement run."""

    placement: Placement
    relaxed_assignment: np.ndarray
    lp_objective: float         # lower bound (relaxed optimum)
    rounded_objective: float    # Eq. (7) value of the final placement

    @property
    def integrality_gap(self) -> float:
        """Relative distance of the rounded solution from the LP bound."""
        if self.lp_objective <= 0:
            return 0.0
        return (self.rounded_objective - self.lp_objective) / self.lp_objective


def solve_lp_simplex(lp: PlacementLP) -> np.ndarray:
    """Solve the placement LP with the built-in simplex.

    The explicit ``X <= 1`` bounds are dropped: non-negativity plus the
    per-expert assignment equality already imply them.
    """
    x, _ = simplex_solve(lp.c, a_ub=lp.a_ub.toarray(), b_ub=lp.b_ub,
                         a_eq=lp.a_eq.toarray(), b_eq=lp.b_eq)
    return x


class LocalityAwarePlacement(PlacementStrategy):
    """The VELA placement strategy.

    Parameters
    ----------
    solver:
        ``"scipy"`` (HiGHS, default) or ``"simplex"`` (built-in, dependency-
        free, slower on large instances).
    """

    name = "vela"

    def __init__(self, solver: str = "scipy"):
        if solver not in ("scipy", "simplex"):
            raise ValueError(f"unknown solver {solver!r}")
        self.solver = solver

    def solve(self, problem: PlacementProblem) -> PlacementSolution:
        """Full pipeline with diagnostics."""
        if problem.probability_matrix is None:
            raise ValueError("VELA placement requires a locality profile; "
                             "run LocalityProfiler (or a synthetic router's "
                             "probability_matrix) first")
        lp = build_placement_lp(problem)
        if self.solver == "scipy":
            solution = solve_lp_scipy(lp)
        else:
            solution = solve_lp_simplex(lp)
        relaxed = lp.extract_assignment(solution)
        placement = round_relaxed_assignment(relaxed,
                                             problem.effective_capacities(),
                                             name=self.name)
        return PlacementSolution(
            placement=placement,
            relaxed_assignment=relaxed,
            lp_objective=relaxed_objective(relaxed, problem),
            rounded_objective=expected_step_comm_time(placement, problem))

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        return self.solve(problem).placement
