"""Evaluating the paper's optimization objective for concrete placements.

Eq. (7): expected total communication time per step is the sum over MoE
blocks of the slowest worker's expected transfer time.  These helpers score
any placement against any locality profile — used by the strategies for
internal decisions, by the exact-optimality checks, and by reports.
"""

from __future__ import annotations

import numpy as np

from .base import Placement, PlacementProblem
from .lp import comm_coefficients


def expected_worker_times(placement: Placement,
                          problem: PlacementProblem) -> np.ndarray:
    """``E(T_{n,l})`` matrix of shape ``(workers, layers)`` (Eq. (6))."""
    coef = comm_coefficients(problem)  # (N, L, E)
    num_workers = problem.num_workers
    x = placement.to_binary_tensor(num_workers)
    return (coef * x).sum(axis=2)


def expected_step_comm_time(placement: Placement,
                            problem: PlacementProblem) -> float:
    """Eq. (7): ``sum_l max_n E(T_{n,l})`` in seconds."""
    return float(expected_worker_times(placement, problem).max(axis=0).sum())


def relaxed_objective(relaxed: np.ndarray, problem: PlacementProblem) -> float:
    """Objective value of a (possibly fractional) assignment tensor."""
    coef = comm_coefficients(problem)
    times = (coef * relaxed).sum(axis=2)  # (N, L)
    return float(times.max(axis=0).sum())


def expected_cross_node_bytes(placement: Placement,
                              problem: PlacementProblem) -> float:
    """Expected bytes crossing node boundaries per step (master-worker flow).

    Counts all four transfers (features and gradients, each dispatched and
    gathered) for workers not on the master's node — the quantity behind the
    paper's Fig. 5 "external traffic".
    """
    config = problem.config
    if problem.probability_matrix is None:
        raise ValueError("needs a probability matrix")
    p = problem.probability_matrix
    token_bytes = config.token_feature_nbytes()
    total = 0.0
    for worker in range(problem.num_workers):
        if not problem.topology.is_cross_node_from_master(worker):
            continue
        mask = (placement.assignment == worker)
        expected_tokens = float((p * mask).sum()) * problem.tokens_per_step
        total += 4.0 * token_bytes * expected_tokens
    return total
