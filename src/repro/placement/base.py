"""Expert placement: the decision variable of the paper's optimization.

A :class:`Placement` is the binary tensor ``X[N, L, E]`` of Section IV-B:
``X[n, l, e] = 1`` iff expert ``e`` of MoE block ``l`` is hosted by worker
``n``.  Validity (each expert on exactly one worker, capacities respected)
is enforced at construction.

:class:`PlacementStrategy` is the interface every placement algorithm
implements; :class:`PlacementProblem` bundles the inputs they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..cluster.topology import ClusterTopology
from ..models.config import MoEModelConfig


@dataclass(frozen=True)
class PlacementProblem:
    """Inputs to an expert-placement decision.

    Attributes
    ----------
    config:
        The MoE model being placed (supplies ``L``, ``E``, ``H``, ``b``).
    topology:
        The cluster (supplies ``N`` and the bandwidths ``B_n``).
    probability_matrix:
        The locality profile ``P[l, e]`` measured before fine-tuning.
        Strategies that ignore locality (sequential, random) accept None.
    tokens_per_step:
        ``K`` — batch size x sequence length.
    capacities:
        ``C_n`` per worker.  None means unconstrained (capacity = L*E).
    """

    config: MoEModelConfig
    topology: ClusterTopology
    probability_matrix: Optional[np.ndarray] = None
    tokens_per_step: int = 4096
    capacities: Optional[Sequence[int]] = None
    # Per-worker effective bandwidths replacing the topology's master links
    # (used by multi-master setups, where each worker is reached from
    # several masters and the LP sees a harmonic-mean bandwidth).
    bandwidth_override: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if self.tokens_per_step < 1:
            raise ValueError("tokens_per_step must be positive")
        if self.bandwidth_override is not None:
            bw = list(self.bandwidth_override)
            if len(bw) != self.topology.num_workers:
                raise ValueError("bandwidth_override length must equal "
                                 "num_workers")
            if any(b <= 0 for b in bw):
                raise ValueError("bandwidth_override must be positive")
        if self.probability_matrix is not None:
            p = np.asarray(self.probability_matrix)
            expected = (self.config.num_layers, self.config.num_experts)
            if p.shape != expected:
                raise ValueError(f"probability_matrix shape {p.shape} != {expected}")
            if np.any(p < 0):
                raise ValueError("probability_matrix has negative entries")
        caps = self.effective_capacities()
        total = self.config.total_experts
        if sum(caps) < total:
            raise ValueError(f"capacities sum to {sum(caps)} < {total} experts")

    @property
    def num_workers(self) -> int:
        """Worker process count."""
        return self.topology.num_workers

    def effective_bandwidths(self) -> list:
        """``B_n`` per worker: the override if set, else the master links."""
        if self.bandwidth_override is not None:
            return [float(b) for b in self.bandwidth_override]
        return self.topology.master_bandwidths()

    def effective_capacities(self) -> List[int]:
        """Capacities with the unconstrained default filled in."""
        if self.capacities is None:
            return [self.config.total_experts] * self.topology.num_workers
        caps = [int(c) for c in self.capacities]
        if len(caps) != self.topology.num_workers:
            raise ValueError("capacities length must equal num_workers")
        if any(c < 0 for c in caps):
            raise ValueError("capacities must be non-negative")
        return caps


class Placement:
    """A validated expert-to-worker assignment."""

    def __init__(self, assignment: np.ndarray, capacities: Optional[Sequence[int]] = None,
                 name: str = ""):
        """``assignment[l, e]`` is the worker id hosting expert ``(l, e)``.

        The dense binary tensor form ``X[N, L, E]`` is available via
        :meth:`to_binary_tensor`; the compact integer form is the primary
        representation because it is valid by construction on the
        "exactly one worker" constraint (10).
        """
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 2:
            raise ValueError("assignment must be (layers, experts)")
        if np.any(assignment < 0):
            raise ValueError("assignment contains negative worker ids")
        self.assignment = assignment
        self.name = name
        if capacities is not None:
            loads = self.worker_loads(len(capacities))
            for worker, (load, cap) in enumerate(zip(loads, capacities)):
                if load > cap:
                    raise ValueError(f"worker {worker} assigned {load} experts, "
                                     f"capacity {cap}")

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        """Number of MoE blocks."""
        return self.assignment.shape[0]

    @property
    def num_experts(self) -> int:
        """Experts per block."""
        return self.assignment.shape[1]

    def worker_of(self, layer: int, expert: int) -> int:
        """Worker hosting one expert."""
        return int(self.assignment[layer, expert])

    def experts_on_worker(self, worker: int) -> List[tuple]:
        """``(layer, expert)`` pairs hosted by a worker."""
        layers, experts = np.nonzero(self.assignment == worker)
        return list(zip(layers.tolist(), experts.tolist()))

    def worker_loads(self, num_workers: int) -> np.ndarray:
        """Experts hosted per worker (constraint (11)'s left-hand side)."""
        return np.bincount(self.assignment.reshape(-1), minlength=num_workers)

    def to_binary_tensor(self, num_workers: int) -> np.ndarray:
        """The paper's ``X[N, L, E]`` binary tensor."""
        x = np.zeros((num_workers, self.num_layers, self.num_experts))
        n_idx = self.assignment.reshape(-1)
        l_idx = np.repeat(np.arange(self.num_layers), self.num_experts)
        e_idx = np.tile(np.arange(self.num_experts), self.num_layers)
        x[n_idx, l_idx, e_idx] = 1.0
        return x

    def tokens_per_worker(self, step_counts: np.ndarray,
                          num_workers: int) -> np.ndarray:
        """``K[n, l]``: token selections each worker receives per block.

        ``step_counts`` is a ``(layers, experts)`` count matrix from a
        routing trace step.
        """
        layers = self.num_layers
        out = np.zeros((num_workers, layers), dtype=np.int64)
        for layer in range(layers):
            out[:, layer] = np.bincount(self.assignment[layer],
                                        weights=step_counts[layer],
                                        minlength=num_workers).astype(np.int64)
        return out

    def __eq__(self, other) -> bool:
        return isinstance(other, Placement) and \
            np.array_equal(self.assignment, other.assignment)

    def __repr__(self) -> str:
        return (f"Placement({self.name or 'unnamed'}, layers={self.num_layers}, "
                f"experts={self.num_experts})")


class PlacementStrategy:
    """Interface: compute a :class:`Placement` for a problem instance."""

    name: str = "base"

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
