"""Online re-placement: closing the loop from anomaly to migration.

The offline pipeline (:mod:`repro.placement.lp` -> rounding ->
:mod:`repro.placement.local_search` -> :mod:`repro.placement.replication`)
solves placement once, before fine-tuning, against the profiling pass.  The
PR-5 :class:`~repro.telemetry.monitor.RoutingHealthMonitor` *detects* when
that placement goes stale (locality collapse, load spikes) but nothing acts
on it.  This module is the actuator:

* :class:`RoutingWindow` — a thread-safe sliding window of recent per-step
  ``(layers, experts)`` routing counts, the online replacement for the
  offline profiling pass.
* :func:`plan_migration` / :class:`MigrationPlan` — the diff between two
  placements as explicit expert moves plus replica adds/drops, with byte
  accounting per receiving worker.  A move whose destination already held a
  copy (an old replica promoted to primary) ships nothing.
* :class:`BreakEvenReport` — migration bytes vs. projected cross-node
  savings over a horizon; the ``min_benefit_ratio`` knob declines
  unprofitable migrations.
* :class:`ReplacementController` — watches the count stream (fed directly
  or by listening to a monitor), re-solves placement against the window on
  a latched anomaly (or a fixed interval), prices the migration through
  :class:`~repro.comm.cost.CommCostModel`, and — when profitable — hot-swaps
  the new :class:`~repro.placement.base.Placement` into every registered
  target (:class:`~repro.runtime.broker.ExpertBroker`, the live serving
  engines, the monitor itself) without stopping decode.

Every decision is observable: ``replacement_started`` /
``replacement_applied`` / ``replacement_skipped`` events land in the event
log, and ``placement.migration_bytes`` / ``placement.saved_bytes_per_step``
gauges track the latest plan.  See ``docs/PLACEMENT.md`` for the full loop
and ``docs/OBSERVABILITY.md`` for the event schema.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.topology import ClusterTopology
from ..comm.cost import CommCostModel
from ..models.config import MoEModelConfig
from ..telemetry.events import EventLog, MonitorEvent
from ..telemetry.tracer import Telemetry
from .base import Placement, PlacementProblem
from .local_search import LocalSearchRefiner
from .lp import problem_from_window
from .replication import ReplicatedPlacement
from .vela import LocalityAwarePlacement

TRIGGER_POLICIES = ("anomaly", "interval", "manual")

RESOLVE_MODES = ("local_search", "lp")

REPLACEMENT_EVENT_KINDS = ("replacement_started", "replacement_applied",
                           "replacement_skipped")


class RoutingWindow:
    """Sliding window over recent per-step routing count matrices.

    Thread-safe: a decode thread can :meth:`observe` while a background
    re-solve reads :meth:`total`.  The window is the online stand-in for
    the paper's profiling pass — its summed counts, normalized, are a
    locality profile measured on *recent* traffic instead of
    pre-fine-tuning traffic.
    """

    def __init__(self, maxlen: int = 32):
        if maxlen < 1:
            raise ValueError("maxlen must be positive")
        self.maxlen = maxlen
        self._steps: deque = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._steps)

    def observe(self, counts: np.ndarray) -> None:
        """Append one step's ``(layers, experts)`` count matrix."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 2:
            raise ValueError(f"expected (layers, experts) counts, "
                             f"got shape {counts.shape}")
        with self._lock:
            self._steps.append(counts.copy())

    def clear(self) -> None:
        """Drop every buffered step."""
        with self._lock:
            self._steps.clear()

    def total(self) -> np.ndarray:
        """Summed counts over the window (``(layers, experts)``)."""
        with self._lock:
            if not self._steps:
                raise ValueError("window is empty")
            return np.sum(self._steps, axis=0)

    def mean(self) -> np.ndarray:
        """Per-step mean counts over the window."""
        with self._lock:
            if not self._steps:
                raise ValueError("window is empty")
            return np.mean(self._steps, axis=0)

    def probability_matrix(self, top_k: int) -> np.ndarray:
        """Windowed locality profile: rows normalized to sum to ``top_k``.

        Matches the :meth:`repro.routing.trace.RoutingTrace.
        probability_matrix` convention the placement LP consumes.  A layer
        that routed no tokens in the window falls back to uniform.
        """
        total = self.total()
        row_mass = total.sum(axis=1, keepdims=True)
        experts = total.shape[1]
        uniform = np.full_like(total, 1.0 / experts)
        with np.errstate(invalid="ignore", divide="ignore"):
            profile = np.where(row_mass > 0, total / np.where(
                row_mass > 0, row_mass, 1.0), uniform)
        return profile * top_k


# --------------------------------------------------------------------- #
# migration plans
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExpertMove:
    """One expert changing primary worker."""

    layer: int
    expert: int
    src: int
    dst: int


def _primary_of(placement) -> Placement:
    """The primary :class:`Placement` of a plain or replicated placement."""
    if isinstance(placement, ReplicatedPlacement):
        return placement.primary
    return placement


def _replicas_of(placement) -> Dict[Tuple[int, int], List[int]]:
    if isinstance(placement, ReplicatedPlacement):
        return {k: list(v) for k, v in placement.replicas.items()}
    return {}


@dataclass(frozen=True)
class MigrationPlan:
    """The transfer schedule realizing a placement change.

    ``moves`` are primary re-assignments; ``replica_adds`` /
    ``replica_drops`` are ``(layer, expert, worker)`` triples.  Byte
    accounting charges ``expert_bytes`` to each *receiving* worker for
    every copy it does not already hold (drops are free — deleting a
    local copy moves nothing).
    """

    moves: Tuple[ExpertMove, ...]
    replica_adds: Tuple[Tuple[int, int, int], ...]
    replica_drops: Tuple[Tuple[int, int, int], ...]
    expert_bytes: float
    num_workers: int
    # (layer, expert, dst) moves whose destination already held a copy
    # under the old placement — promoted in place, nothing shipped.
    free_moves: Tuple[ExpertMove, ...] = ()

    @property
    def num_transfers(self) -> int:
        """Expert copies that actually cross the wire."""
        return len(self.moves) + len(self.replica_adds)

    @property
    def is_empty(self) -> bool:
        """True when the plan changes nothing (including drops)."""
        return not (self.moves or self.free_moves or self.replica_adds
                    or self.replica_drops)

    def bytes_per_worker(self) -> np.ndarray:
        """Bytes each worker must *receive* to realize the plan."""
        incoming = np.zeros(self.num_workers)
        for move in self.moves:
            incoming[move.dst] += self.expert_bytes
        for _, _, worker in self.replica_adds:
            incoming[worker] += self.expert_bytes
        return incoming

    @property
    def total_bytes(self) -> float:
        """Total bytes shipped across the cluster."""
        return float(self.bytes_per_worker().sum())

    def cross_node_bytes(self, topology: ClusterTopology) -> float:
        """Bytes that cross node boundaries (master holds the checkpoint)."""
        incoming = self.bytes_per_worker()
        total = 0.0
        for worker in range(min(self.num_workers, topology.num_workers)):
            if topology.is_cross_node_from_master(worker):
                total += incoming[worker]
        return float(total)

    def transfer_time(self, cost_model: CommCostModel) -> float:
        """Seconds to land the plan, priced by the comm bandwidth model."""
        return cost_model.migration_time(self.bytes_per_worker())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (counts and bytes, not the full move list)."""
        return {"experts_moved": len(self.moves),
                "free_moves": len(self.free_moves),
                "replica_adds": len(self.replica_adds),
                "replica_drops": len(self.replica_drops),
                "total_bytes": self.total_bytes}


def plan_migration(old, new, config: MoEModelConfig,
                   num_workers: Optional[int] = None,
                   expert_bytes: Optional[float] = None) -> MigrationPlan:
    """Diff two placements into a :class:`MigrationPlan`.

    ``old`` and ``new`` may each be a :class:`~repro.placement.base.
    Placement` or a :class:`~repro.placement.replication.
    ReplicatedPlacement`; replica sets default to empty for plain
    placements.  ``expert_bytes`` defaults to the model's fp16 expert
    footprint (``config.expert_nbytes()``) — frozen weights plus adapter
    state travel together, matching :func:`repro.core.adaptive.
    migration_plan_bytes`.
    """
    old_primary, new_primary = _primary_of(old), _primary_of(new)
    if old_primary.assignment.shape != new_primary.assignment.shape:
        raise ValueError("placement shapes differ")
    if expert_bytes is None:
        expert_bytes = float(config.expert_nbytes())
    if num_workers is None:
        num_workers = max(int(old_primary.assignment.max()),
                          int(new_primary.assignment.max())) + 1

    old_replicas = _replicas_of(old)
    new_replicas = _replicas_of(new)

    def old_holders(layer: int, expert: int) -> set:
        holders = {old_primary.worker_of(layer, expert)}
        holders.update(old_replicas.get((layer, expert), ()))
        return holders

    moves: List[ExpertMove] = []
    free_moves: List[ExpertMove] = []
    changed = np.argwhere(old_primary.assignment != new_primary.assignment)
    for layer, expert in changed:
        layer, expert = int(layer), int(expert)
        move = ExpertMove(layer=layer, expert=expert,
                          src=old_primary.worker_of(layer, expert),
                          dst=new_primary.worker_of(layer, expert))
        if move.dst in old_holders(layer, expert):
            free_moves.append(move)
        else:
            moves.append(move)

    adds: List[Tuple[int, int, int]] = []
    drops: List[Tuple[int, int, int]] = []
    for key in sorted(set(old_replicas) | set(new_replicas)):
        layer, expert = key
        before = set(old_replicas.get(key, ()))
        after = set(new_replicas.get(key, ()))
        for worker in sorted(after - before):
            if worker not in old_holders(layer, expert):
                adds.append((layer, expert, worker))
        for worker in sorted(before - after):
            drops.append((layer, expert, worker))

    return MigrationPlan(moves=tuple(moves), free_moves=tuple(free_moves),
                         replica_adds=tuple(adds),
                         replica_drops=tuple(drops),
                         expert_bytes=expert_bytes,
                         num_workers=int(num_workers))


# --------------------------------------------------------------------- #
# break-even analysis
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BreakEvenReport:
    """Migration cost vs. projected cross-node savings.

    ``migration_bytes`` counts only bytes the migration itself puts on
    cross-node wires; ``old_bytes_per_step`` / ``new_bytes_per_step`` are
    the projected cross-node traffic of one step under each placement,
    evaluated on the routing window the re-solve used.
    """

    migration_bytes: float
    migration_time_s: float
    old_bytes_per_step: float
    new_bytes_per_step: float
    horizon_steps: int
    min_benefit_ratio: float = 1.0

    @property
    def saved_bytes_per_step(self) -> float:
        """Projected cross-node bytes saved per step (can be negative)."""
        return self.old_bytes_per_step - self.new_bytes_per_step

    @property
    def break_even_steps(self) -> float:
        """Steps until savings repay the migration (``inf`` if never)."""
        saved = self.saved_bytes_per_step
        if saved <= 0:
            return math.inf
        return self.migration_bytes / saved

    @property
    def projected_saved_bytes(self) -> float:
        """Savings over the full horizon."""
        return self.saved_bytes_per_step * self.horizon_steps

    @property
    def benefit_ratio(self) -> float:
        """Horizon savings over migration bytes (``inf`` for a free plan)."""
        if self.saved_bytes_per_step <= 0:
            return 0.0
        if self.migration_bytes <= 0:
            return math.inf
        return self.projected_saved_bytes / self.migration_bytes

    @property
    def profitable(self) -> bool:
        """True when the benefit ratio clears ``min_benefit_ratio``."""
        return self.benefit_ratio >= self.min_benefit_ratio

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary."""
        ratio = self.benefit_ratio
        steps = self.break_even_steps
        return {"migration_bytes": self.migration_bytes,
                "migration_time_s": self.migration_time_s,
                "old_bytes_per_step": self.old_bytes_per_step,
                "new_bytes_per_step": self.new_bytes_per_step,
                "saved_bytes_per_step": self.saved_bytes_per_step,
                "horizon_steps": self.horizon_steps,
                "break_even_steps": None if math.isinf(steps) else steps,
                "benefit_ratio": None if math.isinf(ratio) else ratio,
                "min_benefit_ratio": self.min_benefit_ratio,
                "profitable": self.profitable}


# --------------------------------------------------------------------- #
# controller
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReplanConfig:
    """Knobs of the online re-placement loop (see ``docs/API.md``).

    ``trigger`` selects when a re-solve starts: ``"anomaly"`` (the
    attached monitor has a latched anomaly), ``"interval"`` (every
    ``interval`` observed steps), or ``"manual"``
    (:meth:`ReplacementController.request_replan` only).

    ``resolve`` selects how the candidate is computed.
    ``"local_search"`` (default) hill-climbs from the *current*
    placement, so only experts whose move actually lowers the objective
    travel — migration-light, the mode that breaks even quickly.
    ``"lp"`` re-runs the full LP + rounding pipeline from scratch (plus
    local-search refinement when ``refine`` is set); it finds the same
    objective but re-shuffles arbitrarily many label-equivalent experts,
    so its plans are usually declined on cost.
    """

    window_size: int = 32
    min_window_steps: int = 8
    trigger: str = "anomaly"
    interval: int = 20
    cooldown_steps: int = 20
    min_benefit_ratio: float = 1.0
    horizon_steps: int = 100
    resolve: str = "local_search"
    refine: bool = True
    background: bool = False

    def __post_init__(self) -> None:
        if self.trigger not in TRIGGER_POLICIES:
            raise ValueError(f"trigger must be one of {TRIGGER_POLICIES}, "
                             f"got {self.trigger!r}")
        if self.resolve not in RESOLVE_MODES:
            raise ValueError(f"resolve must be one of {RESOLVE_MODES}, "
                             f"got {self.resolve!r}")
        if self.window_size < 1:
            raise ValueError("window_size must be positive")
        if not 1 <= self.min_window_steps <= self.window_size:
            raise ValueError("min_window_steps must be in "
                             "[1, window_size]")
        if self.interval < 1:
            raise ValueError("interval must be positive")
        if self.cooldown_steps < 0:
            raise ValueError("cooldown_steps must be non-negative")
        if self.min_benefit_ratio < 0:
            raise ValueError("min_benefit_ratio must be non-negative")
        if self.horizon_steps < 1:
            raise ValueError("horizon_steps must be positive")


@dataclass
class ReplanDecision:
    """One completed re-solve: what was planned and what happened.

    ``outcome`` is ``"applied"`` or ``"skipped"``; ``reason`` explains a
    skip (``"no_change"`` | ``"unprofitable"``).
    """

    step: int
    outcome: str
    reason: str = ""
    plan: Optional[MigrationPlan] = None
    report: Optional[BreakEvenReport] = None
    placement: Optional[Placement] = None


class ReplacementController:
    """Re-solve placement online and hot-swap it into the runtime.

    Parameters
    ----------
    config:
        The MoE model config (supplies shapes and expert footprints).
    topology:
        The cluster; prices both steady-state traffic and the migration.
    placement:
        The currently active placement (the controller's swap baseline).
    tokens_per_step:
        ``K`` for the re-solved :class:`~repro.placement.base.
        PlacementProblem`.
    capacities:
        Per-worker expert capacities for the re-solve (None =
        unconstrained, which collapses everything onto the fastest link —
        pass real capacities for meaningful plans).
    replan:
        The :class:`ReplanConfig` knob bundle.
    monitor:
        Optional :class:`~repro.telemetry.monitor.RoutingHealthMonitor`.
        When given, the controller registers itself as a step listener
        (every ``observe_step`` on the monitor feeds the window) and the
        ``"anomaly"`` trigger reads its latched state.  The monitor's
        telemetry registry and event log become the default sinks.
    targets:
        Objects exposing ``swap_placement(placement)`` — brokers, live
        engines, extra monitors.  The attached ``monitor`` is swapped
        automatically; don't list it again.

    Thread model: with ``replan.background=True`` the solve runs on a
    daemon thread and the swap happens whenever it finishes (engines
    apply it at their next iteration boundary); the default synchronous
    mode solves inline, which keeps replays deterministic.
    """

    def __init__(self, config: MoEModelConfig, topology: ClusterTopology,
                 placement, tokens_per_step: int = 4096,
                 capacities: Optional[Sequence[int]] = None,
                 replan: Optional[ReplanConfig] = None,
                 monitor=None, telemetry: Optional[Telemetry] = None,
                 event_log: Optional[EventLog] = None,
                 targets: Sequence = (),
                 strategy=None):
        self.config = config
        self.topology = topology
        self.placement = placement
        self.tokens_per_step = int(tokens_per_step)
        self.capacities = None if capacities is None \
            else [int(c) for c in capacities]
        self.replan = replan or ReplanConfig()
        self.monitor = monitor
        if telemetry is not None:
            self.telemetry = telemetry
        elif monitor is not None:
            self.telemetry = monitor.telemetry
        else:
            self.telemetry = Telemetry()
        if event_log is not None:
            self.event_log = event_log
        elif monitor is not None:
            self.event_log = monitor.event_log
        else:
            self.event_log = EventLog()
        self.targets = list(targets)
        self.strategy = strategy or LocalityAwarePlacement()
        need_refiner = self.replan.refine or \
            self.replan.resolve == "local_search"
        self.refiner = LocalSearchRefiner() if need_refiner else None
        self.cost_model = CommCostModel(config, topology)
        self.window = RoutingWindow(self.replan.window_size)
        self.history: List[ReplanDecision] = []
        self.steps_observed = 0
        self._last_attempt_step: Optional[int] = None
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        if monitor is not None:
            monitor.add_listener(self._on_monitor_step)

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def add_target(self, target) -> None:
        """Register another ``swap_placement``-capable object."""
        with self._lock:
            self.targets.append(target)

    def _on_monitor_step(self, counts: np.ndarray, step: Optional[int],
                         events) -> None:
        # A freshly latched anomaly means the traffic regime just broke:
        # every buffered pre-anomaly step describes the old regime, so
        # keep only what comes after (min_window_steps then delays the
        # re-solve until the window is entirely post-break).
        from ..telemetry.monitor import ANOMALY_KINDS
        if any(event.kind in ANOMALY_KINDS for event in events):
            self.window.clear()
        self.observe_step(counts, step=step)

    @property
    def busy(self) -> bool:
        """True while a background re-solve is in flight."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background re-solve to finish."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------ #
    # observation + triggers
    # ------------------------------------------------------------------ #
    def observe_step(self, counts: np.ndarray,
                     step: Optional[int] = None
                     ) -> Optional[ReplanDecision]:
        """Feed one step's routing counts; maybe trigger a re-solve.

        Returns the :class:`ReplanDecision` when a synchronous re-solve
        ran on this call, else None (including when a background solve
        was merely started).
        """
        self.window.observe(counts)
        with self._lock:
            if step is None:
                step = self.steps_observed
            self.steps_observed = max(self.steps_observed, step + 1)
        if not self._should_trigger(step):
            return None
        return self.request_replan(step=step)

    def _should_trigger(self, step: int) -> bool:
        replan = self.replan
        if replan.trigger == "manual" or self.busy:
            return False
        if len(self.window) < replan.min_window_steps:
            return False
        last = self._last_attempt_step
        if last is not None and step - last < replan.cooldown_steps:
            return False
        if replan.trigger == "anomaly":
            return self.monitor is not None and not self.monitor.healthy
        return (step + 1) % replan.interval == 0

    def request_replan(self, step: Optional[int] = None,
                       horizon_steps: Optional[int] = None
                       ) -> Optional[ReplanDecision]:
        """Start a re-solve now (any trigger policy).

        ``horizon_steps`` overrides the config's projection horizon —
        e.g. the steps remaining in a bounded replay.  Synchronous mode
        returns the decision; background mode returns None immediately.
        """
        if step is None:
            step = self.steps_observed - 1
        if horizon_steps is None:
            horizon_steps = self.replan.horizon_steps
        with self._lock:
            self._last_attempt_step = step
        self._emit("replacement_started", "info", step,
                   f"re-solving placement over a {len(self.window)}-step "
                   f"window", trigger=self.replan.trigger,
                   window_steps=len(self.window))
        if self.replan.background:
            thread = threading.Thread(target=self._replan,
                                      args=(step, horizon_steps),
                                      name="replan", daemon=True)
            self._thread = thread
            thread.start()
            return None
        return self._replan(step, horizon_steps)

    # ------------------------------------------------------------------ #
    # the re-solve itself
    # ------------------------------------------------------------------ #
    def _replan(self, step: int, horizon_steps: int) -> ReplanDecision:
        problem = problem_from_window(
            self.config, self.topology, self.window,
            tokens_per_step=self.tokens_per_step,
            capacities=self.capacities)
        if self.replan.resolve == "local_search":
            # Incremental: hill-climb from the active placement, then cut
            # the climb at the profit-maximizing prefix — later actions
            # chase ever-smaller traffic savings that no longer repay an
            # expert transfer within the horizon.
            base = _primary_of(self.placement)
            refinement = self.refiner.refine(base, problem)
            candidate = self._truncate_to_profit(
                base, refinement.actions, problem, horizon_steps)
        else:
            candidate = self.strategy.place(problem)
            if self.replan.refine:
                candidate = self.refiner.refine(candidate,
                                                problem).placement

        plan = plan_migration(self.placement, candidate, self.config,
                              num_workers=self.topology.num_workers)
        report = self._break_even(plan, candidate, horizon_steps)
        self.telemetry.gauge("placement.migration_bytes").set(
            plan.total_bytes)
        self.telemetry.gauge("placement.saved_bytes_per_step").set(
            report.saved_bytes_per_step)

        if plan.is_empty:
            decision = ReplanDecision(step=step, outcome="skipped",
                                      reason="no_change", plan=plan,
                                      report=report)
            self._emit("replacement_skipped", "info", step,
                       "re-solve reproduced the active placement",
                       reason="no_change", **report.to_dict())
        elif not report.profitable:
            decision = ReplanDecision(step=step, outcome="skipped",
                                      reason="unprofitable", plan=plan,
                                      report=report)
            self._emit("replacement_skipped", "warning", step,
                       f"migration of {plan.total_bytes:.3g} B not repaid "
                       f"within {horizon_steps} steps "
                       f"(benefit ratio {report.benefit_ratio:.3g} < "
                       f"{self.replan.min_benefit_ratio:.3g})",
                       reason="unprofitable", **report.to_dict())
        else:
            self._apply(candidate)
            decision = ReplanDecision(step=step, outcome="applied",
                                      plan=plan, report=report,
                                      placement=candidate)
            self._emit("replacement_applied", "info", step,
                       f"migrated {plan.num_transfers} experts "
                       f"({plan.total_bytes:.3g} B), projected saving "
                       f"{report.saved_bytes_per_step:.3g} B/step",
                       **plan.to_dict(), **report.to_dict())
        self.telemetry.counter("placement.replacements",
                               outcome=decision.outcome).add(1.0)
        with self._lock:
            self.history.append(decision)
        return decision

    def _truncate_to_profit(self, base: Placement, actions: Sequence[Tuple],
                            problem: PlacementProblem,
                            horizon_steps: int) -> Placement:
        """Apply the prefix of ``actions`` maximizing projected profit.

        Profit of a prefix = ``horizon * cross-node bytes saved per step
        - min_benefit_ratio * cross-node migration bytes``, evaluated on
        the window's mean step — the same arithmetic
        :class:`BreakEvenReport` applies to the final plan, so the chosen
        prefix is the one the decline rule scores best.  Each action
        updates the running totals in O(1).
        """
        if not actions:
            return base
        mean_counts = self.window.mean()
        topology = self.topology
        num_workers = topology.num_workers
        is_cross = np.array([topology.is_cross_node_from_master(w)
                             for w in range(num_workers)])
        per_step_scale = 4 * self.config.token_feature_nbytes()
        expert_bytes = float(self.config.expert_nbytes())
        min_ratio = self.replan.min_benefit_ratio

        assignment = base.assignment.copy()
        original = base.assignment
        cross_tokens = float(sum(
            np.bincount(assignment[layer], weights=mean_counts[layer],
                        minlength=num_workers)[is_cross].sum()
            for layer in range(assignment.shape[0])))
        base_cross_tokens = cross_tokens
        # migration cost of the prefix: one expert_bytes per expert whose
        # current seat differs from its original one, charged when the
        # *destination* is cross-node from the master (the checkpoint).
        migration_cross = 0.0

        def reseat(layer: int, expert: int, src: int, dst: int) -> float:
            nonlocal cross_tokens
            count = float(mean_counts[layer, expert])
            if is_cross[src]:
                cross_tokens -= count
            if is_cross[dst]:
                cross_tokens += count
            home = int(original[layer, expert])
            before = assignment[layer, expert]
            delta = 0.0
            if before != home and is_cross[before]:
                delta -= expert_bytes
            if dst != home and is_cross[dst]:
                delta += expert_bytes
            assignment[layer, expert] = dst
            return delta

        best_profit = -math.inf
        best_k = 0
        for k, action in enumerate(actions, start=1):
            if action[0] == "move":
                _, layer, expert, src, dst = action
                migration_cross += reseat(layer, expert, src, dst)
            else:
                _, layer, expert, src, expert2, dst = action
                migration_cross += reseat(layer, expert, src, dst)
                migration_cross += reseat(layer, expert2, dst, src)
            saved = (base_cross_tokens - cross_tokens) * per_step_scale
            profit = horizon_steps * saved - min_ratio * migration_cross
            if profit > best_profit:
                best_profit = profit
                best_k = k

        assignment = original.copy()
        for action in actions[:best_k]:
            if action[0] == "move":
                _, layer, expert, src, dst = action
                assignment[layer, expert] = dst
            else:
                _, layer, expert, src, expert2, dst = action
                assignment[layer, expert] = dst
                assignment[layer, expert2] = src
        return Placement(assignment,
                         capacities=problem.effective_capacities(),
                         name=f"{base.name}+replan")

    def _break_even(self, plan: MigrationPlan, candidate,
                    horizon_steps: int) -> BreakEvenReport:
        mean_counts = self.window.mean()
        num_workers = self.topology.num_workers
        old_tokens = self.placement.tokens_per_worker(mean_counts,
                                                      num_workers)
        new_tokens = candidate.tokens_per_worker(mean_counts, num_workers)
        return BreakEvenReport(
            migration_bytes=plan.cross_node_bytes(self.topology),
            migration_time_s=plan.transfer_time(self.cost_model),
            old_bytes_per_step=self.cost_model.cross_node_bytes(old_tokens),
            new_bytes_per_step=self.cost_model.cross_node_bytes(new_tokens),
            horizon_steps=horizon_steps,
            min_benefit_ratio=self.replan.min_benefit_ratio)

    def _apply(self, candidate: Placement) -> None:
        with self._lock:
            targets = list(self.targets)
            self.placement = candidate
        for target in targets:
            target.swap_placement(candidate)
        if self.monitor is not None:
            self.monitor.swap_placement(candidate)

    # ------------------------------------------------------------------ #
    def _emit(self, kind: str, severity: str, step: Optional[int],
              message: str, **labels: Any) -> MonitorEvent:
        event = MonitorEvent(kind=kind, severity=severity, step=step,
                             message=message, time_unix=time.time(),
                             labels=labels)
        self.event_log.emit(event)
        return event
