"""Random placement baseline.

"All experts from all MoE blocks are randomly shuffled and assigned to
different worker processes" (Section V-A).  Capacity-aware: experts are
dealt into workers round-robin over a shuffled slot list, so the result is
feasible whenever total capacity suffices.
"""

from __future__ import annotations

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy


class RandomPlacement(PlacementStrategy):
    """Uniformly shuffle experts onto workers, respecting capacities."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        config = problem.config
        caps = problem.effective_capacities()
        total = config.total_experts
        rng = np.random.default_rng(self.seed)

        # Build a multiset of worker slots.  Workers with more capacity get
        # proportionally more slots, truncated to exactly `total` slots in a
        # balanced way: keep dealing one slot per worker (when capacity
        # remains) until all experts have a seat.
        slots = []
        remaining = list(caps)
        while len(slots) < total:
            progressed = False
            for worker in range(problem.num_workers):
                if remaining[worker] > 0 and len(slots) < total:
                    slots.append(worker)
                    remaining[worker] -= 1
                    progressed = True
            if not progressed:
                raise ValueError("total capacity insufficient for all experts")
        slots = np.array(slots)
        rng.shuffle(slots)
        assignment = slots.reshape(config.num_layers, config.num_experts)
        return Placement(assignment, capacities=caps, name=self.name)
