"""A from-scratch two-phase dense simplex solver.

The paper relies on "off-the-shelf LP solvers"; this repository uses scipy's
HiGHS by default but ships its own solver so the core contribution has no
hard dependency on an external optimizer.  The implementation is a textbook
two-phase primal simplex with Bland's anti-cycling rule, for problems of the
form

    min c @ x   s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  x >= 0.

Upper bounds must be encoded as rows by the caller.  For the placement LP
this is free: the relaxed assignment variables satisfy ``x <= 1`` implicitly
through the per-expert equality ``sum_n X[n,l,e] = 1`` with non-negative
variables, so no explicit bound rows are needed (see
:func:`repro.placement.vela.solve_lp_simplex`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class SimplexError(RuntimeError):
    """LP is infeasible, unbounded, or exceeded the iteration budget."""


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the tableau on (row, col)."""
    tableau[row] /= tableau[row, col]
    pivot_row = tableau[row]
    column = tableau[:, col].copy()
    column[row] = 0.0
    tableau -= np.outer(column, pivot_row)
    tableau[row] = pivot_row
    basis[row] = col


def _simplex_iterate(tableau: np.ndarray, basis: np.ndarray, num_structural: int,
                     max_iters: int, tol: float) -> None:
    """Run primal simplex to optimality on a feasible tableau in place.

    The last row is the (negated-cost) objective; the last column is the RHS.
    """
    num_rows = tableau.shape[0] - 1
    for _ in range(max_iters):
        costs = tableau[-1, :-1]
        # Bland's rule: smallest-index entering variable with negative
        # reduced cost (objective row holds -reduced costs here: we keep the
        # convention that an improving column has cost row entry < -tol).
        entering_candidates = np.nonzero(costs < -tol)[0]
        if len(entering_candidates) == 0:
            return  # optimal
        col = int(entering_candidates[0])
        column = tableau[:num_rows, col]
        positive = column > tol
        if not np.any(positive):
            raise SimplexError("LP is unbounded")
        ratios = np.full(num_rows, np.inf)
        ratios[positive] = tableau[:num_rows, -1][positive] / column[positive]
        best = ratios.min()
        # Bland tie-break: among minimal ratios, pick the row whose basic
        # variable has the smallest index.
        rows = np.nonzero(ratios <= best + tol)[0]
        row = int(rows[np.argmin(basis[rows])])
        _pivot(tableau, basis, row, col)
    raise SimplexError(f"simplex exceeded {max_iters} iterations")


def simplex_solve(c: np.ndarray,
                  a_ub: Optional[np.ndarray] = None,
                  b_ub: Optional[np.ndarray] = None,
                  a_eq: Optional[np.ndarray] = None,
                  b_eq: Optional[np.ndarray] = None,
                  max_iters: int = 20000,
                  tol: float = 1e-9) -> Tuple[np.ndarray, float]:
    """Solve the LP; returns ``(x, objective)``.

    Raises :class:`SimplexError` on infeasible/unbounded problems.
    """
    c = np.asarray(c, dtype=np.float64)
    n = c.shape[0]
    if a_ub is None:
        a_ub = np.zeros((0, n))
        b_ub = np.zeros(0)
    if a_eq is None:
        a_eq = np.zeros((0, n))
        b_eq = np.zeros(0)
    a_ub = np.asarray(a_ub, dtype=np.float64).reshape(-1, n)
    a_eq = np.asarray(a_eq, dtype=np.float64).reshape(-1, n)
    b_ub = np.asarray(b_ub, dtype=np.float64).reshape(-1)
    b_eq = np.asarray(b_eq, dtype=np.float64).reshape(-1)
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq

    # Assemble [A_ub | I_slack ; A_eq | 0] and normalize RHS to >= 0.
    a = np.zeros((m, n + m_ub))
    a[:m_ub, :n] = a_ub
    a[:m_ub, n:n + m_ub] = np.eye(m_ub)
    a[m_ub:, :n] = a_eq
    b = np.concatenate([b_ub, b_eq])
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    num_structural = n + m_ub

    # Choose initial basis: slack columns where possible (slack rows whose
    # slack kept +1 sign), artificials elsewhere.
    needs_artificial = np.ones(m, dtype=bool)
    basis = np.full(m, -1, dtype=np.int64)
    for i in range(m_ub):
        if not negative[i]:
            basis[i] = n + i
            needs_artificial[i] = False
    num_artificial = int(needs_artificial.sum())

    total_cols = num_structural + num_artificial
    tableau = np.zeros((m + 1, total_cols + 1))
    tableau[:m, :num_structural] = a
    tableau[:m, -1] = b
    art_col = num_structural
    for i in range(m):
        if needs_artificial[i]:
            tableau[i, art_col] = 1.0
            basis[i] = art_col
            art_col += 1

    if num_artificial > 0:
        # Phase 1: minimize the sum of artificials.
        tableau[-1, num_structural:total_cols] = 1.0
        for i in range(m):
            if basis[i] >= num_structural:
                tableau[-1] -= tableau[i]
        _simplex_iterate(tableau, basis, num_structural, max_iters, tol)
        if tableau[-1, -1] < -tol * max(1.0, np.abs(b).max()) - 1e-7:
            raise SimplexError("LP is infeasible")
        # Drive any lingering artificial basics out of the basis.
        for i in range(m):
            if basis[i] >= num_structural:
                pivots = np.nonzero(np.abs(tableau[i, :num_structural]) > tol)[0]
                if len(pivots) > 0:
                    _pivot(tableau, basis, i, int(pivots[0]))
        # Drop artificial columns.
        keep = list(range(num_structural)) + [total_cols]
        tableau = tableau[:, keep]

    # Phase 2: install the true objective.
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    for i in range(m):
        coeff = tableau[-1, basis[i]]
        if abs(coeff) > tol:
            tableau[-1] -= coeff * tableau[i]
    _simplex_iterate(tableau, basis, num_structural, max_iters, tol)

    x = np.zeros(tableau.shape[1] - 1)
    for i in range(m):
        x[basis[i]] = tableau[i, -1]
    solution = x[:n]
    return solution, float(c @ solution)
