"""Conventional expert parallelism's implicit placement.

The paper's EP baseline (Fig. 2, Section V-A): "the experts of each MoE
block were sequentially placed on GPUs, with the e-th expert of any MoE
block assigned to the e%N-th GPU while the other layers were replicated
among all devices."

The expert-to-device map is therefore identical to
:class:`~repro.placement.sequential.SequentialPlacement`; what differs is
the *execution model* (all-to-all with synchronization and replicated
backbone), which `repro.runtime.engine` applies when the placement's
``execution_mode`` is ``"expert_parallel"``.
"""

from __future__ import annotations

from .base import Placement, PlacementProblem, PlacementStrategy
from .sequential import SequentialPlacement


class ExpertParallelPlacement(PlacementStrategy):
    """Sequential striping, tagged for all-to-all execution."""

    name = "expert_parallel"

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        placement = SequentialPlacement().place(problem)
        placement.name = self.name
        return placement
