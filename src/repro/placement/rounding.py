"""Rounding the relaxed LP solution back to a feasible binary placement.

Implements the paper's three-step conversion (end of Section IV-B):

1. Threshold at 0.5: relaxed values above 0.5 become 1.
2. For each over-capacity worker, drop its assignments with the lowest
   relaxed values until the capacity constraint holds.
3. Every still-unassigned expert goes to the worker with remaining capacity
   that showed the strongest affinity (highest relaxed value) for it.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .base import Placement


def round_relaxed_assignment(relaxed: np.ndarray,
                             capacities: Sequence[int],
                             name: str = "vela") -> Placement:
    """Convert a relaxed ``X[n, l, e]`` tensor into a feasible placement.

    Raises if total capacity is insufficient (the LP itself would have been
    infeasible in that case, so reaching here indicates a caller bug).
    """
    relaxed = np.asarray(relaxed, dtype=np.float64)
    if relaxed.ndim != 3:
        raise ValueError("relaxed tensor must be (workers, layers, experts)")
    num_workers, layers, experts = relaxed.shape
    caps = np.asarray(list(capacities), dtype=np.int64)
    if caps.shape[0] != num_workers:
        raise ValueError("capacities length must equal num_workers")
    if caps.sum() < layers * experts:
        raise ValueError("total capacity cannot host all experts")

    assignment = np.full((layers, experts), -1, dtype=np.int64)

    # Step 1: threshold at 0.5.  Values sum to 1 over workers, so at most one
    # worker can exceed 0.5 for a given expert.
    winners = relaxed.argmax(axis=0)          # (layers, experts)
    winner_vals = relaxed.max(axis=0)
    above = winner_vals > 0.5
    assignment[above] = winners[above]

    # Step 2: trim over-capacity workers, dropping the weakest assignments.
    loads = np.bincount(assignment[assignment >= 0], minlength=num_workers)
    for worker in range(num_workers):
        if loads[worker] <= caps[worker]:
            continue
        held = np.argwhere(assignment == worker)
        values = np.array([relaxed[worker, l, e] for l, e in held])
        order = np.argsort(values)  # ascending: weakest first
        num_to_drop = loads[worker] - caps[worker]
        for idx in order[:num_to_drop]:
            l, e = held[idx]
            assignment[l, e] = -1
        loads[worker] = caps[worker]

    # Step 3: place the unassigned experts by strongest remaining affinity.
    unassigned = np.argwhere(assignment < 0)
    # Sort by how decisive the expert's best remaining choice is, so highly
    # contended experts are seated before capacity runs out under them.
    affinity_order = np.argsort(
        [-relaxed[:, l, e].max() for l, e in unassigned])
    for idx in affinity_order:
        l, e = unassigned[idx]
        preferences = np.argsort(-relaxed[:, l, e])
        placed = False
        for worker in preferences:
            if loads[worker] < caps[worker]:
                assignment[l, e] = worker
                loads[worker] += 1
                placed = True
                break
        if not placed:
            raise RuntimeError("capacity bookkeeping error during rounding")

    return Placement(assignment, capacities=caps.tolist(), name=name)


def rounding_gap(relaxed_objective: float, rounded_objective: float) -> float:
    """Relative degradation of the rounded solution vs the LP bound."""
    if relaxed_objective <= 0:
        return 0.0
    return (rounded_objective - relaxed_objective) / relaxed_objective
