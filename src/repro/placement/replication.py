"""Expert replication: spending spare memory on extra copies of hot experts.

The paper assigns each expert to exactly one worker (constraint (10)).  When
worker capacities exceed the ``L*E`` total, the leftover memory can hold
*replicas* of popular experts, splitting their token load across copies —
the direction systems like Lina and SmartMoE explore for inference, adapted
here to VELA's master-worker fine-tuning with a consistency caveat: during
fine-tuning a replica must either stay frozen (valid for the frozen expert
weights + per-replica LoRA averaging) or sync adapters each step; the model
below charges an adapter all-reduce between replica holders per step.

``ReplicationStrategy`` greedily replicates the experts that dominate the
per-layer bottleneck (Eq. (7)) until capacity or improvement runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy
from .lp import comm_coefficients, problem_from_window
from .vela import LocalityAwarePlacement


class ReplicatedPlacement:
    """A placement where experts may live on several workers.

    Token load of a replicated expert splits across its holders
    proportionally to master-link bandwidth (the minimizer of the per-expert
    contribution to every holder's transfer time under a linear cost).
    """

    def __init__(self, primary: Placement,
                 replicas: Dict[Tuple[int, int], List[int]],
                 bandwidths: Sequence[float], name: str = "vela+replication"):
        self.primary = primary
        self.bandwidths = np.asarray(list(bandwidths), dtype=np.float64)
        self.name = name
        self.replicas: Dict[Tuple[int, int], List[int]] = {}
        for key, workers in replicas.items():
            layer, expert = key
            holders = set(workers)
            primary_worker = primary.worker_of(layer, expert)
            holders.discard(primary_worker)
            if holders:
                self.replicas[key] = sorted(holders)

    @property
    def num_layers(self) -> int:
        """Number of MoE blocks."""
        return self.primary.num_layers

    @property
    def num_experts(self) -> int:
        """Experts per block."""
        return self.primary.num_experts

    @property
    def num_replicas(self) -> int:
        """Extra expert copies beyond the primaries."""
        return sum(len(v) for v in self.replicas.values())

    @property
    def assignment(self) -> np.ndarray:
        """The primary's ``(layers, experts)`` worker-id matrix.

        Consumers that score against a single-owner assignment (the
        routing-health monitor's locality gauges, ``CommCostModel``) see
        the primary placement; replica holders are only visible through
        :meth:`holders` / :meth:`fractions`.
        """
        return self.primary.assignment

    def holders(self, layer: int, expert: int) -> List[int]:
        """All workers holding a copy of expert ``(layer, expert)``."""
        extra = self.replicas.get((layer, expert), [])
        return [self.primary.worker_of(layer, expert)] + list(extra)

    def fractions(self, layer: int, expert: int) -> np.ndarray:
        """Load split across holders, proportional to their bandwidth."""
        holders = self.holders(layer, expert)
        weights = self.bandwidths[holders]
        return weights / weights.sum()

    def worker_loads(self, num_workers: int) -> np.ndarray:
        """Hosted copies per worker (primaries + replicas)."""
        loads = self.primary.worker_loads(num_workers).astype(np.int64)
        for workers in self.replicas.values():
            for worker in workers:
                loads[worker] += 1
        return loads

    def tokens_per_worker(self, step_counts: np.ndarray,
                          num_workers: int) -> np.ndarray:
        """Expected ``K[n, l]`` with replicated experts' load split."""
        step_counts = np.asarray(step_counts, dtype=np.float64)
        out = np.zeros((num_workers, self.num_layers))
        for layer in range(self.num_layers):
            for expert in range(self.num_experts):
                count = step_counts[layer, expert]
                if count == 0:
                    continue
                holders = self.holders(layer, expert)
                for worker, fraction in zip(holders,
                                            self.fractions(layer, expert)):
                    out[worker, layer] += count * fraction
        return out

    def replica_sync_bytes(self, config, lora_rank: int = 8) -> float:
        """Per-step adapter bytes synchronized between replica holders.

        Each replicated expert's LoRA matrices (fp32) are all-reduced across
        its holders once per step.
        """
        per_expert = 3 * (config.hidden_size + config.ffn_hidden_size) * \
            lora_rank * 4.0
        return per_expert * self.num_replicas


def expected_step_comm_time_replicated(placement: ReplicatedPlacement,
                                       problem: PlacementProblem) -> float:
    """Eq. (7) generalized to split expert loads."""
    coef = comm_coefficients(problem)  # (N, L, E): time if fully assigned
    num_workers = problem.num_workers
    total = 0.0
    for layer in range(placement.num_layers):
        worker_time = np.zeros(num_workers)
        for expert in range(placement.num_experts):
            holders = placement.holders(layer, expert)
            fractions = placement.fractions(layer, expert)
            for worker, fraction in zip(holders, fractions):
                worker_time[worker] += coef[worker, layer, expert] * fraction
        total += worker_time.max()
    return float(total)


class FrozenPlacementStrategy(PlacementStrategy):
    """A strategy that always returns one fixed, precomputed placement.

    Used as the ``base`` of :class:`ReplicationStrategy` when the primary
    assignment must not move — the live decode path's online hot-expert
    replication promotes copies *on top of* the serving placement without
    migrating any primary (migration is
    :class:`~repro.placement.replan.ReplacementController`'s job, on its
    own cadence).
    """

    name = "frozen"

    def __init__(self, placement: Placement):
        self.placement = placement

    def place(self, problem: PlacementProblem) -> Placement:
        """Return the frozen placement (the problem only prices it)."""
        if problem.config.num_layers != self.placement.num_layers or \
                problem.config.num_experts != self.placement.num_experts:
            raise ValueError(
                f"frozen placement is {self.placement.num_layers}x"
                f"{self.placement.num_experts} but the problem wants "
                f"{problem.config.num_layers}x{problem.config.num_experts}")
        return self.placement


@dataclass
class ReplicationReport:
    """Summary of a replication pass: objective before/after."""
    placement: ReplicatedPlacement
    base_objective: float
    replicated_objective: float
    replicas_added: int

    @property
    def improvement(self) -> float:
        """Fractional objective improvement (0 = none)."""
        if self.base_objective <= 0:
            return 0.0
        return 1.0 - self.replicated_objective / self.base_objective


class ReplicationStrategy(PlacementStrategy):
    """Greedy bottleneck-driven replication on top of a base strategy.

    Each round finds the layer with the largest bottleneck time, takes the
    bottleneck worker's most expensive expert, and replicates it to the
    worker with spare capacity that most reduces that layer's maximum.
    Stops when capacity is exhausted or no move improves the objective.
    """

    name = "vela+replication"

    def __init__(self, base: PlacementStrategy = None,
                 max_replicas: int = 64):
        if max_replicas < 0:
            raise ValueError("max_replicas must be non-negative")
        self.base = base or LocalityAwarePlacement()
        self.max_replicas = max_replicas

    def solve(self, problem: PlacementProblem) -> ReplicationReport:
        """Solve and return the full diagnostic report."""
        primary = self.base.place(problem)
        bandwidths = problem.topology.master_bandwidths()
        placement = ReplicatedPlacement(primary, {}, bandwidths,
                                        name=self.name)
        capacities = np.asarray(problem.effective_capacities())
        base_objective = expected_step_comm_time_replicated(placement, problem)

        current = base_objective
        for _ in range(self.max_replicas):
            move = self._best_move(placement, problem, capacities)
            if move is None:
                break
            (layer, expert), worker, new_objective = move
            if new_objective >= current - 1e-15:
                break
            key = (layer, expert)
            placement.replicas.setdefault(key, []).append(worker)
            placement.replicas[key] = sorted(set(placement.replicas[key]))
            current = new_objective

        return ReplicationReport(placement=placement,
                                 base_objective=base_objective,
                                 replicated_objective=current,
                                 replicas_added=placement.num_replicas)

    def place(self, problem: PlacementProblem) -> ReplicatedPlacement:
        """Compute a placement for ``problem``."""
        return self.solve(problem).placement

    def solve_from_window(self, config, topology, window,
                          **problem_kwargs) -> ReplicationReport:
        """Re-solve (base strategy + replication) from a routing window.

        ``window`` is anything :func:`~repro.placement.lp.
        problem_from_window` accepts; keyword arguments pass through to
        the problem (pass ``capacities`` with real spare room, or
        replication has nothing to spend).
        """
        problem = problem_from_window(config, topology, window,
                                      **problem_kwargs)
        return self.solve(problem)

    # ------------------------------------------------------------------ #
    def _best_move(self, placement: ReplicatedPlacement,
                   problem: PlacementProblem, capacities: np.ndarray):
        coef = comm_coefficients(problem)
        num_workers = problem.num_workers
        loads = placement.worker_loads(num_workers)
        spare = capacities - loads
        if spare.max() <= 0:
            return None

        # Current per-layer worker times.
        layer_times = np.zeros((placement.num_layers, num_workers))
        for layer in range(placement.num_layers):
            for expert in range(placement.num_experts):
                for worker, fraction in zip(
                        placement.holders(layer, expert),
                        placement.fractions(layer, expert)):
                    layer_times[layer, worker] += \
                        coef[worker, layer, expert] * fraction

        bottleneck_layer = int(layer_times.max(axis=1).argmax())
        bottleneck_worker = int(layer_times[bottleneck_layer].argmax())

        # The bottleneck worker's most expensive expert in that layer.
        best_expert, best_cost = None, 0.0
        for expert in range(placement.num_experts):
            holders = placement.holders(bottleneck_layer, expert)
            if bottleneck_worker not in holders:
                continue
            idx = holders.index(bottleneck_worker)
            cost = coef[bottleneck_worker, bottleneck_layer, expert] * \
                placement.fractions(bottleneck_layer, expert)[idx]
            if cost > best_cost:
                best_cost, best_expert = cost, expert
        if best_expert is None:
            return None

        # Try replicating it onto each spare-capacity worker; keep the best.
        key = (bottleneck_layer, best_expert)
        current_holders = set(placement.holders(*key))
        best = None
        for worker in range(num_workers):
            if spare[worker] <= 0 or worker in current_holders:
                continue
            trial = ReplicatedPlacement(
                placement.primary,
                {**placement.replicas,
                 key: placement.replicas.get(key, []) + [worker]},
                placement.bandwidths, name=placement.name)
            objective = expected_step_comm_time_replicated(trial, problem)
            if best is None or objective < best[2]:
                best = (key, worker, objective)
        return best
