"""Hierarchical (two-level) locality-aware placement.

The joint LP has ``N * L * E`` variables; at datacenter scale (hundreds of
workers, thousands of experts) a flat solve becomes expensive.  The standard
systems answer is decomposition along the topology:

1. **Node level** — place experts onto *nodes*, treating each node as one
   super-worker whose bandwidth is its master-facing link and whose capacity
   is the sum of its GPUs' capacities.
2. **GPU level** — within each node, split that node's experts across its
   GPUs with a per-node LP (these are small and independent).

Both levels reuse the same LP + rounding machinery.  The decomposition is
exact when intra-node links are uniform per node (the max inside a node is
governed by the node's internal balance, which level 2 optimizes) and is a
principled approximation otherwise; the ablation bench measures the gap
against the flat LP where both are feasible.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..cluster.device import DeviceSpec
from ..cluster.link import Link
from ..cluster.topology import ClusterTopology
from ..models.config import MoEModelConfig
from .base import Placement, PlacementProblem, PlacementStrategy
from .vela import LocalityAwarePlacement


def _node_super_topology(topology: ClusterTopology) -> ClusterTopology:
    """A topology with one super-worker per node.

    The master's node keeps its (fast) intra link; other nodes are reached
    over the cross link — exactly the bandwidth classes of the original
    master-to-node paths.
    """
    return ClusterTopology(num_nodes=topology.num_nodes, gpus_per_node=1,
                           device=topology.device,
                           intra_link=topology.intra_link,
                           cross_link=topology.cross_link,
                           master_node=topology.master_node)


class HierarchicalPlacement(PlacementStrategy):
    """Two-level LP decomposition: nodes first, GPUs within nodes second."""

    name = "vela-hierarchical"

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        if problem.probability_matrix is None:
            raise ValueError("hierarchical placement needs a locality profile")
        topology = problem.topology
        config = problem.config
        capacities = problem.effective_capacities()

        # ---- level 1: experts -> nodes ---------------------------------- #
        node_capacities = [
            sum(capacities[w] for w in topology.workers_on_node(node))
            for node in range(topology.num_nodes)
        ]
        node_problem = PlacementProblem(
            config=config, topology=_node_super_topology(topology),
            probability_matrix=problem.probability_matrix,
            tokens_per_step=problem.tokens_per_step,
            capacities=node_capacities)
        node_placement = LocalityAwarePlacement().place(node_problem)

        # ---- level 2: per-node split across its GPUs -------------------- #
        assignment = np.full((config.num_layers, config.num_experts), -1,
                             dtype=np.int64)
        for node in range(topology.num_nodes):
            workers = topology.workers_on_node(node)
            mask = node_placement.assignment == node
            if not mask.any():
                continue
            self._split_within_node(problem, node, workers, mask, assignment)

        if np.any(assignment < 0):
            raise RuntimeError("hierarchical placement left experts unseated")
        return Placement(assignment, capacities=capacities, name=self.name)

    def _split_within_node(self, problem: PlacementProblem, node: int,
                           workers: List[int], mask: np.ndarray,
                           assignment: np.ndarray) -> None:
        """Greedy max-min split of one node's experts across its GPUs.

        Within a node every GPU shares the same master link class, so the
        objective reduces to per-layer load balancing weighted by the
        locality profile — a greedy LPT pass solves it near-optimally
        without another LP.
        """
        topology = problem.topology
        capacities = problem.effective_capacities()
        profile = problem.probability_matrix
        remaining = {w: capacities[w] for w in workers}
        # Seat the heaviest experts first, always onto the least-loaded
        # (per current layer) feasible GPU; loads are tracked per layer.
        layer_loads = {w: np.zeros(problem.config.num_layers)
                       for w in workers}
        entries = sorted(((float(profile[l, e]), l, e)
                          for l, e in np.argwhere(mask)), reverse=True)
        for weight, layer, expert in entries:
            candidates = [w for w in workers if remaining[w] > 0]
            if not candidates:
                raise RuntimeError(f"node {node} capacity exhausted")
            # Prefer the master-colocated GPU for hot experts (its link is
            # the cheapest), then balance per-layer load.
            def cost(worker: int) -> tuple:
                link_rank = 0 if worker == topology.master_worker_id else 1
                return (layer_loads[worker][layer], link_rank, worker)

            best = min(candidates, key=cost)
            assignment[layer, expert] = best
            layer_loads[best][layer] += weight
            remaining[best] -= 1
