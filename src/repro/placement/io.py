"""Placement (de)serialization.

Placements are deployment artifacts — users compute one, inspect it, and
apply it to a cluster — so they serialize to human-auditable JSON with
enough metadata to detect mismatched reuse.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from .base import Placement

FORMAT_VERSION = 1


def save_placement(placement: Placement, path: str,
                   model_name: str = "", extra: Optional[dict] = None) -> None:
    """Write a placement as JSON at ``path`` (directories are created)."""
    payload = {
        "format_version": FORMAT_VERSION,
        "name": placement.name,
        "model_name": model_name,
        "num_layers": placement.num_layers,
        "num_experts": placement.num_experts,
        "assignment": placement.assignment.tolist(),
    }
    if extra:
        payload["extra"] = extra
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_placement(path: str, expect_model: Optional[str] = None) -> Placement:
    """Read a placement written by :func:`save_placement`.

    ``expect_model`` optionally guards against applying a placement computed
    for a different model.
    """
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported placement format version {version!r}")
    if expect_model is not None and payload.get("model_name") != expect_model:
        raise ValueError(
            f"placement was computed for model {payload.get('model_name')!r}, "
            f"not {expect_model!r}")
    assignment = np.asarray(payload["assignment"], dtype=np.int64)
    expected = (payload["num_layers"], payload["num_experts"])
    if assignment.shape != expected:
        raise ValueError(f"assignment shape {assignment.shape} does not match "
                         f"recorded dimensions {expected}")
    return Placement(assignment, name=payload.get("name", ""))
