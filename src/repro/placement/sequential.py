"""Sequential placement baseline.

Assigns the ``e``-th expert of every MoE block to worker ``e % N`` — the
paper's "sequential placement" baseline, which mirrors how conventional
expert parallelism stripes experts across devices but runs inside VELA's
master-worker framework.
"""

from __future__ import annotations

import numpy as np

from .base import Placement, PlacementProblem, PlacementStrategy


class SequentialPlacement(PlacementStrategy):
    """Stripe experts across workers by expert index (``e % N``)."""

    name = "sequential"

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        config = problem.config
        num_workers = problem.num_workers
        experts = np.arange(config.num_experts)
        row = experts % num_workers
        assignment = np.tile(row, (config.num_layers, 1))
        assignment = _respect_capacities(assignment, problem)
        return Placement(assignment, capacities=problem.effective_capacities(),
                         name=self.name)


def _respect_capacities(assignment: np.ndarray,
                        problem: PlacementProblem) -> np.ndarray:
    """Shift overflow assignments to the least-loaded workers.

    Sequential striping is already balanced when ``N`` divides ``E``; with
    tight capacities the tail experts spill to whichever workers have room.
    """
    caps = np.array(problem.effective_capacities())
    loads = np.zeros(len(caps), dtype=np.int64)
    flat = assignment.reshape(-1).copy()
    for i, worker in enumerate(flat):
        if loads[worker] < caps[worker]:
            loads[worker] += 1
            continue
        candidates = np.nonzero(loads < caps)[0]
        if len(candidates) == 0:
            raise ValueError("total capacity insufficient for all experts")
        replacement = candidates[np.argmin(loads[candidates])]
        flat[i] = replacement
        loads[replacement] += 1
    return flat.reshape(assignment.shape)
