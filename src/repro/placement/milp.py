"""Exact binary placement via mixed-integer programming.

The paper solves the relaxed LP and rounds; this module solves the original
binary problem exactly (scipy's HiGHS MILP backend) so tests and ablations
can measure the LP+rounding optimality gap on small instances.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from .base import Placement, PlacementProblem, PlacementStrategy
from .lp import build_placement_lp


class ExactMILPPlacement(PlacementStrategy):
    """Solve the binary placement problem to optimality.

    Exponential worst case — intended for small instances (tests, gap
    studies).  ``time_limit`` guards against pathological cases; hitting it
    raises unless ``accept_incumbent`` is set.
    """

    name = "milp"

    def __init__(self, time_limit: float = 60.0, accept_incumbent: bool = False):
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        self.time_limit = time_limit
        self.accept_incumbent = accept_incumbent

    def place(self, problem: PlacementProblem) -> Placement:
        """Compute a placement for ``problem``."""
        lp = build_placement_lp(problem)
        n_x = lp.num_assignment_vars

        integrality = np.zeros(lp.num_vars)
        integrality[:n_x] = 1  # X binary; lambdas continuous

        constraints = [
            optimize.LinearConstraint(lp.a_ub, -np.inf, lp.b_ub),
            optimize.LinearConstraint(lp.a_eq, lp.b_eq, lp.b_eq),
        ]
        bounds = optimize.Bounds(lp.lower, lp.upper)
        result = optimize.milp(lp.c, constraints=constraints, bounds=bounds,
                               integrality=integrality,
                               options={"time_limit": self.time_limit})
        if result.x is None:
            raise RuntimeError(f"MILP solve failed: {result.message}")
        if not result.success and not self.accept_incumbent:
            raise RuntimeError(f"MILP did not reach optimality: {result.message}")

        x = lp.extract_assignment(result.x)
        assignment = x.argmax(axis=0)  # binary: exactly one ~1 per (l, e)
        return Placement(assignment, capacities=problem.effective_capacities(),
                         name=self.name)
