"""Trainer callbacks: step-level observation hooks."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np


class Callback:
    """Observer of fine-tuning progress."""

    def on_step(self, step: int, loss: float,
                records: List) -> None:  # pragma: no cover - interface
        """Called after every optimizer step with the block routing records."""

    def on_end(self, num_steps: int) -> None:  # pragma: no cover - interface
        """Called once when training finishes."""


class LossHistory(Callback):
    """Collect the loss curve."""

    def __init__(self) -> None:
        self.losses: List[float] = []

    def on_step(self, step: int, loss: float, records: List) -> None:
        """Handle one training step's observations."""
        self.losses.append(loss)

    def array(self) -> np.ndarray:
        """Collected values as a numpy array."""
        return np.array(self.losses)


class RoutingRecorder(Callback):
    """Collect per-step expert access counts (feeds a RoutingTrace)."""

    def __init__(self, num_experts: int) -> None:
        self.num_experts = num_experts
        self.step_counts: List[np.ndarray] = []

    def on_step(self, step: int, loss: float, records: List) -> None:
        """Handle one training step's observations."""
        counts = np.stack([r.access_counts(self.num_experts) for r in records])
        self.step_counts.append(counts)

    def counts_array(self) -> np.ndarray:
        """``(steps, layers, experts)`` counts."""
        return np.stack(self.step_counts)


class GateMonitor(Callback):
    """Track the gate's softmax behavior on one block (Fig. 3(b)/(c) data)."""

    def __init__(self, layer: int) -> None:
        self.layer = layer
        self.mean_probs: List[np.ndarray] = []
        self.selected_score_sums: List[np.ndarray] = []

    def on_step(self, step: int, loss: float, records: List) -> None:
        """Handle one training step's observations."""
        record = records[self.layer]
        self.mean_probs.append(record.probs.mean(axis=0))
        self.selected_score_sums.append(record.selected_scores.sum(axis=1))

    def mean_probs_array(self) -> np.ndarray:
        """Per-step mean gate probabilities, stacked."""
        return np.stack(self.mean_probs)


class LambdaCallback(Callback):
    """Wrap a plain function as a callback."""

    def __init__(self, on_step: Callable[[int, float, List], None]):
        self._fn = on_step

    def on_step(self, step: int, loss: float, records: List) -> None:
        """Handle one training step's observations."""
        self._fn(step, loss, records)
