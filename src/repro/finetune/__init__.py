"""Fine-tuning loop for live MoE models (LoRA + AdamW, paper recipe)."""

from .checkpoint import (load_optimizer_state, load_training_state,
                         optimizer_state_dict, save_training_state)
from .callbacks import (Callback, GateMonitor, LambdaCallback, LossHistory,
                        RoutingRecorder)
from .trainer import FineTuneConfig, FineTuneResult, Trainer, pretrain_router

__all__ = [
    "FineTuneConfig", "FineTuneResult", "Trainer", "pretrain_router",
    "Callback", "LossHistory", "RoutingRecorder", "GateMonitor",
    "LambdaCallback",
    "save_training_state", "load_training_state",
    "optimizer_state_dict", "load_optimizer_state",
]
