"""Training-state checkpoints: model + optimizer, resumable.

Long fine-tuning runs need restartability (the failure-recovery story in
`repro.core.recovery` assumes the master can restore state).  A checkpoint
bundles the model's parameters with the AdamW moments and step counter so a
resumed run continues *bit-identically* from where it stopped.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from ..nn.layers import Module
from ..nn.optim import AdamW


def optimizer_state_dict(optimizer: AdamW) -> Dict[str, np.ndarray]:
    """Extract AdamW state as flat arrays (step counter + moments)."""
    state: Dict[str, np.ndarray] = {
        "adamw.step": np.array(optimizer._step, dtype=np.int64)}
    for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        state[f"adamw.m.{i}"] = m
        state[f"adamw.v.{i}"] = v
    return state


def load_optimizer_state(optimizer: AdamW,
                         state: Dict[str, np.ndarray]) -> None:
    """Restore AdamW state saved by :func:`optimizer_state_dict`."""
    expected = len(optimizer._m)
    moments = sum(1 for key in state if key.startswith("adamw.m."))
    if moments != expected:
        raise ValueError(f"checkpoint has {moments} moment tensors, "
                         f"optimizer has {expected} parameters")
    optimizer._step = int(state["adamw.step"])
    for i in range(expected):
        m, v = state[f"adamw.m.{i}"], state[f"adamw.v.{i}"]
        if m.shape != optimizer._m[i].shape:
            raise ValueError(f"moment {i} shape mismatch: "
                             f"{m.shape} vs {optimizer._m[i].shape}")
        optimizer._m[i][...] = m
        optimizer._v[i][...] = v


def save_training_state(model: Module, optimizer: AdamW, path: str,
                        step: int = 0) -> None:
    """Write model parameters + optimizer state + step counter to ``.npz``."""
    payload: Dict[str, np.ndarray] = {
        f"model.{name}": param.data
        for name, param in model.named_parameters()
    }
    payload.update(optimizer_state_dict(optimizer))
    payload["train.step"] = np.array(step, dtype=np.int64)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **payload)


def load_training_state(model: Module, optimizer: AdamW, path: str) -> int:
    """Restore a checkpoint; returns the saved step counter."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        payload = {key: archive[key] for key in archive.files}
    model_state = {key[len("model."):]: value
                   for key, value in payload.items()
                   if key.startswith("model.")}
    model.load_state_dict(model_state)
    optimizer_state = {key: value for key, value in payload.items()
                       if key.startswith("adamw.")}
    load_optimizer_state(optimizer, optimizer_state)
    return int(payload["train.step"])
