"""LoRA fine-tuning of live (tiny) MoE models.

The trainer reproduces the paper's fine-tuning recipe (Section V-A): LoRA on
every linear layer except the gate, AdamW with the published
hyperparameters, frozen pre-trained weights.  Every step's routing decisions
are recorded, producing the :class:`~repro.routing.trace.RoutingTrace` that
the distributed engines replay and the Fig. 3 experiments analyze.

With ``telemetry=``, each step records wall-clock ``train.forward`` /
``train.backward`` / ``train.optimizer`` spans on the ``trainer`` track plus
``train.loss`` and (when clipping) ``train.grad_norm`` gauges — this is the
*live* counterpart of the simulation engines' model-time spans.

With ``monitor=`` (a :class:`~repro.telemetry.monitor.RoutingHealthMonitor`),
each step additionally feeds the routing-health gauges and anomaly
detectors — including the Theorem-1 drift check, since the monitored
layer's full gate probabilities flow through the routing records — and the
run is bracketed by a :class:`~repro.telemetry.events.RunManifest`
(``begin_run`` at the first step unless the caller already opened one,
``end_run`` with the final loss statistics on completion).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data.loader import LMDataLoader
from ..lora import LoRAConfig, LoRAReport, inject_lora
from ..models.moe_block import DISPATCH_MODES, BlockRoutingRecord
from ..models.transformer import MoETransformer
from ..nn.optim import AdamW, GradClipper
from ..nn.schedule import LRScheduler, WarmupCosineLR
from ..routing.trace import RoutingTrace
from ..telemetry import Telemetry
from ..telemetry.monitor import RoutingHealthMonitor
from .callbacks import Callback, GateMonitor, LossHistory, RoutingRecorder


def _merge_records(first: List[BlockRoutingRecord],
                   second: List[BlockRoutingRecord]) -> List[BlockRoutingRecord]:
    """Concatenate per-layer routing records across micro-batches."""
    merged = []
    for a, b in zip(first, second):
        merged.append(BlockRoutingRecord(
            layer=a.layer,
            expert_indices=np.concatenate([a.expert_indices,
                                           b.expert_indices]),
            selected_scores=np.concatenate([a.selected_scores,
                                            b.selected_scores]),
            # Unmonitored layers run with record_probs off and carry no
            # probability matrix.
            probs=(np.concatenate([a.probs, b.probs])
                   if a.probs is not None and b.probs is not None else None)))
    return merged


@dataclass(frozen=True)
class FineTuneConfig:
    """Fine-tuning hyperparameters (paper defaults).

    ``grad_clip`` enables global-norm clipping; ``grad_accumulation`` folds
    several micro-batches into one optimizer step (the effective tokens per
    step grows accordingly); ``warmup_steps``/``min_lr`` switch the constant
    schedule to warmup+cosine.  ``dispatch`` selects the MoE dispatch
    implementation for the training loop (``"fused"`` is the hot-loop
    default; ``"reference"`` keeps the seed's per-(slot, expert) path for
    A/B runs).
    """

    steps: int = 500
    lr: float = 3e-5
    betas: tuple = (0.8, 0.999)
    eps: float = 1e-8
    weight_decay: float = 3e-7
    lora: LoRAConfig = field(default_factory=LoRAConfig)
    monitored_layer: int = 0
    grad_clip: Optional[float] = None
    grad_accumulation: int = 1
    warmup_steps: int = 0
    min_lr: float = 0.0
    dispatch: str = "fused"

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be positive")
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {DISPATCH_MODES}, "
                             f"got {self.dispatch!r}")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive when set")
        if self.grad_accumulation < 1:
            raise ValueError("grad_accumulation must be >= 1")
        if self.warmup_steps < 0 or self.warmup_steps >= self.steps:
            raise ValueError("warmup_steps must be in [0, steps)")
        if self.min_lr < 0:
            raise ValueError("min_lr must be non-negative")


@dataclass
class FineTuneResult:
    """Everything a fine-tuning run produced."""

    losses: np.ndarray
    trace: RoutingTrace
    gate_mean_probs: np.ndarray          # (steps, experts) of monitored layer
    selected_score_sums: List[np.ndarray]
    lora_report: LoRAReport

    @property
    def num_steps(self) -> int:
        """Number of recorded steps."""
        return len(self.losses)

    def loss_improvement(self) -> float:
        """Mean-of-first-10 minus mean-of-last-10 losses."""
        head = self.losses[:10].mean()
        tail = self.losses[-10:].mean()
        return float(head - tail)


class Trainer:
    """Drives LoRA fine-tuning and records routing behavior.

    Parameters
    ----------
    model:
        A live :class:`MoETransformer` (pre-trained or freshly built).
    loader:
        Batch source; its geometry defines tokens per step.
    config:
        Hyperparameters; LoRA is injected at construction unless the model
        already contains adapters.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; records wall-clock
        per-step spans and loss/grad-norm gauges.
    monitor:
        Optional :class:`~repro.telemetry.monitor.RoutingHealthMonitor`;
        digests every step's routing records (gauges + anomaly events) and
        writes the run manifest.
    executor:
        Optional :class:`~repro.parallel.ExpertExecutor`; the trainer binds
        it to the model (native weight format, after LoRA injection —
        adapters ship per task, frozen bases live in shared memory), routes
        every MoE layer's expert GEMMs through it, and refreshes its weight
        store after each optimizer step (a no-op under the standard frozen-
        base recipe).  The caller keeps ownership: ``close()`` it after
        training.
    """

    def __init__(self, model: MoETransformer, loader: LMDataLoader,
                 config: Optional[FineTuneConfig] = None,
                 inject: bool = True,
                 telemetry: Optional[Telemetry] = None,
                 monitor: Optional[RoutingHealthMonitor] = None,
                 executor=None):
        self.model = model
        self.loader = loader
        self.config = config or FineTuneConfig()
        self.telemetry = telemetry
        self.monitor = monitor
        self.executor = executor
        if inject:
            self.lora_report = inject_lora(model, self.config.lora)
        else:
            self.lora_report = LoRAReport()
            self.lora_report.trainable_params = model.num_parameters(True)
        if executor is not None:
            # Bind after injection so the store snapshots the frozen bases
            # (and support checks see the final projection modules).
            if not executor.bound:
                executor.bind(model, weight_format="native")
            model.set_expert_executor(executor)
        self.optimizer = AdamW(model.trainable_parameters(),
                               lr=self.config.lr, betas=self.config.betas,
                               eps=self.config.eps,
                               weight_decay=self.config.weight_decay)
        self.clipper = (GradClipper(self.config.grad_clip)
                        if self.config.grad_clip is not None else None)
        if self.config.warmup_steps > 0 or self.config.min_lr > 0:
            self.scheduler: Optional[LRScheduler] = WarmupCosineLR(
                self.optimizer, total_steps=self.config.steps,
                warmup_steps=self.config.warmup_steps,
                min_lr=self.config.min_lr)
        else:
            self.scheduler = None

    def train(self, steps: Optional[int] = None,
              callbacks: Optional[List[Callback]] = None) -> FineTuneResult:
        """Run ``steps`` optimizer steps (defaults to the config's count)."""
        steps = steps if steps is not None else self.config.steps
        model_cfg = self.model.config

        loss_cb = LossHistory()
        routing_cb = RoutingRecorder(model_cfg.num_experts)
        gate_cb = GateMonitor(self.config.monitored_layer)
        all_callbacks = [loss_cb, routing_cb, gate_cb] + list(callbacks or [])

        self.model.train()
        self.model.set_dispatch_mode(self.config.dispatch)
        # The inner loop only needs the full (tokens, experts) probability
        # matrix on the gate-monitored layer; skip the per-step copy
        # everywhere else.
        moe_blocks = self.model._moe_blocks()
        previous_probs = [moe.record_probs for moe in moe_blocks]
        for layer, moe in enumerate(moe_blocks):
            moe.record_probs = layer == self.config.monitored_layer
        tokens_per_step = None
        accumulation = self.config.grad_accumulation
        micro_batches = self.loader.batches(steps * accumulation)
        telemetry = self.telemetry
        monitor = self.monitor
        if monitor is not None and monitor.manifest is None:
            monitor.begin_run(config={
                "model": model_cfg.name, "steps": steps,
                "lr": self.config.lr,
                "monitored_layer": self.config.monitored_layer,
                "dispatch": self.config.dispatch,
                "grad_accumulation": accumulation,
            }, seed=getattr(model_cfg, "seed", None))

        def span(name, step):
            if telemetry is None:
                return nullcontext()
            return telemetry.span(name, category=name.split(".")[-1],
                                  track="trainer", step=step)

        try:
            for step in range(steps):
                if self.scheduler is not None:
                    self.scheduler.step()
                self.model.zero_grad()
                step_loss = 0.0
                step_counts = None
                for _ in range(accumulation):
                    inputs, targets = next(micro_batches)
                    if tokens_per_step is None:
                        tokens_per_step = (inputs.shape[0] * inputs.shape[1]
                                           * accumulation)
                    with span("train.forward", step):
                        loss = self.model.loss(inputs, targets) \
                            * (1.0 / accumulation)
                    with span("train.backward", step):
                        loss.backward()
                    step_loss += float(loss.item())
                    records = self.model.routing_records()
                    if step_counts is None:
                        step_counts = records
                    else:
                        step_counts = _merge_records(step_counts, records)
                with span("train.optimizer", step):
                    if self.clipper is not None:
                        grad_norm = self.clipper.clip(self.optimizer.params)
                        if telemetry is not None:
                            telemetry.gauge("train.grad_norm").set(
                                float(grad_norm))
                    self.optimizer.step()
                    if self.executor is not None:
                        self.executor.refresh()
                if telemetry is not None:
                    telemetry.gauge("train.loss").set(step_loss)
                if monitor is not None:
                    monitor.observe_records(step_counts, step=step,
                                            num_experts=model_cfg.num_experts)
                for callback in all_callbacks:
                    callback.on_step(step, step_loss, step_counts)
            for callback in all_callbacks:
                callback.on_end(steps)
        finally:
            for moe, previous in zip(moe_blocks, previous_probs):
                moe.record_probs = previous

        trace = RoutingTrace(model_name=model_cfg.name,
                             top_k=model_cfg.top_k,
                             tokens_per_step=int(tokens_per_step),
                             counts=routing_cb.counts_array())
        result = FineTuneResult(losses=loss_cb.array(), trace=trace,
                                gate_mean_probs=gate_cb.mean_probs_array(),
                                selected_score_sums=gate_cb.selected_score_sums,
                                lora_report=self.lora_report)
        if monitor is not None:
            monitor.end_run(final_metrics={
                "steps": result.num_steps,
                "final_loss": float(result.losses[-1]),
                "loss_improvement": result.loss_improvement(),
            })
        return result


def pretrain_router(model: MoETransformer, loader: LMDataLoader,
                    steps: int = 40, lr: float = 5e-4,
                    aux_loss_weight: float = 0.0) -> np.ndarray:
    """Quickly pre-train a fresh model so its gate becomes confident.

    The locality experiments need a "pre-trained MoE model" whose routing is
    already established; this full-parameter pass (all weights trainable, no
    LoRA) produces one in seconds at tiny scale.  Returns the loss curve.

    The defaults land the gate in the paper's Fig. 3(b) regime: selected
    softmax-score sums all above ~0.5 with the majority above 0.7.
    ``aux_loss_weight`` optionally enables the Switch-style load-balancing
    loss (strong values keep the gate diffuse — useful for studying the
    *uncertain* end of Theorem 1's bound).
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    previous_weights = [block.moe.gate.aux_loss_weight for block in model.blocks]
    for block in model.blocks:
        block.moe.gate.aux_loss_weight = aux_loss_weight
    try:
        model.train()
        optimizer = AdamW(model.trainable_parameters(), lr=lr,
                          betas=(0.9, 0.999), weight_decay=0.0)
        losses = []
        for _, (inputs, targets) in zip(range(steps), loader.batches(steps)):
            loss = model.loss(inputs, targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.item()))
    finally:
        for block, weight in zip(model.blocks, previous_weights):
            block.moe.gate.aux_loss_weight = weight
    return np.array(losses)
