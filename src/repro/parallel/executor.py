"""Expert-parallel executors: serial (in-process) and process-pool.

Both executors run the same per-segment SwiGLU kernels against the same
:class:`~repro.parallel.shm.SharedWeightStore` views — the serial executor
simply evaluates the task functions in-process while the pool fans them out
over ``fork``-ed workers — so the two are bit-identical by construction,
and both mirror :func:`repro.nn.functional.fused_swiglu`'s operation order
exactly, which makes the parallel path bit-identical to the in-process
fused dispatch as well (for native-format plain-Linear experts).

A task ships only the per-expert activation segment (and, for LoRA
experts, the small adapter factors); the big frozen weight matrices stay in
shared memory.  The backward task recomputes the forward intermediates
worker-side instead of shipping them — two GEMMs of recompute versus three
``(rows, ffn)`` arrays of pickling.

Per-task wall-clock timings come back with each result; the owning
executor converts them into ``parallel.forward`` / ``parallel.backward``
telemetry spans on per-worker tracks (aligned with the session's
:class:`~repro.telemetry.clock.WallClock` origin, which ``fork`` workers
share because ``time.perf_counter`` is system-wide monotonic on Linux)
plus ``parallel.tasks`` / ``parallel.rows`` counters.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import is_grad_enabled
from ..telemetry.clock import WallClock
from .shm import (SharedWeightStore, StoreHandle, WorkerWeightView,
                  expert_groups)

EXECUTOR_KINDS = ("serial", "process")

# Worker-process globals, set once per worker by _worker_init.
_VIEW: Optional[WorkerWeightView] = None
_ORIGIN: float = 0.0


def _worker_init(handle: StoreHandle, origin: float) -> None:
    global _VIEW, _ORIGIN
    _VIEW = WorkerWeightView(handle)
    _ORIGIN = origin


def _effective_weights(view: WorkerWeightView, layer: int, expert_id: int,
                       lora) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense ``(w_gate, w_up, w_down)``, with LoRA deltas folded in.

    ``lora`` is ``None`` or a per-projection triple of ``(A, B, scaling)``;
    the effective weight is ``W + scaling * (B @ A)``, i.e. the wrapped
    layer's :meth:`~repro.lora.adapter.LoRALinear.merged_weight`.
    """
    weights = view.dense_weights(layer, expert_id)
    if lora is None:
        return weights
    return tuple(w + s * (b @ a)
                 for w, (a, b, s) in zip(weights, lora))


def _forward_task(task, view: WorkerWeightView, origin: float):
    """One expert segment forward: ``(y, (pid, start, duration))``.

    The arithmetic replays :func:`~repro.nn.functional.fused_swiglu`'s
    forward in the identical operation order.
    """
    layer, expert_id, x, lora = task
    t0 = time.perf_counter()
    w_gate, w_up, w_down = _effective_weights(view, layer, expert_id, lora)
    g = x @ w_gate.T
    u = x @ w_up.T
    sig = 1.0 / (1.0 + np.exp(-g))
    s = g * sig
    h = s * u
    y = h @ w_down.T
    t1 = time.perf_counter()
    return y, (os.getpid(), t0 - origin, t1 - t0)


def _backward_task(task, view: WorkerWeightView, origin: float):
    """One expert segment backward: ``(gx, grads, (pid, start, duration))``.

    Recomputes the forward intermediates, then replays
    :func:`~repro.nn.functional.fused_swiglu`'s backward — including its
    in-place ``dsilu`` build — so gradients match the in-process fused
    path bit for bit.  ``grads`` maps ``"w"`` to the three effective-weight
    gradients and/or ``"lora"`` to per-projection ``(gA, gB)`` pairs
    (``gA = s·Bᵀ·gW_eff``, ``gB = s·gW_eff·Aᵀ`` by the chain rule through
    ``W_eff = W + s·BA``).
    """
    layer, expert_id, x, gy, lora, need_gx, need_w, need_lora = task
    t0 = time.perf_counter()
    w_gate, w_up, w_down = _effective_weights(view, layer, expert_id, lora)
    g = x @ w_gate.T
    u = x @ w_up.T
    sig = 1.0 / (1.0 + np.exp(-g))
    s = g * sig
    h = s * u
    gh = gy @ w_down
    gu = gh * s
    dsilu = 1.0 - sig
    dsilu *= sig
    dsilu *= g
    dsilu += sig
    gg = gh * u
    gg *= dsilu
    gx = None
    if need_gx:
        gx = gg @ w_gate
        gx += gu @ w_up
    grads: Dict[str, Any] = {}
    if need_w or need_lora:
        gw_gate = gg.T @ x
        gw_up = gu.T @ x
        gw_down = gy.T @ h
        if need_w:
            grads["w"] = (gw_gate, gw_up, gw_down)
        if need_lora:
            grads["lora"] = tuple(
                (sc * (b.T @ gw), sc * (gw @ a.T))
                for gw, (a, b, sc) in zip((gw_gate, gw_up, gw_down), lora))
    t1 = time.perf_counter()
    return gx, grads, (os.getpid(), t0 - origin, t1 - t0)


def _pool_forward(task):
    return _forward_task(task, _VIEW, _ORIGIN)


def _pool_backward(task):
    return _backward_task(task, _VIEW, _ORIGIN)


class ExpertExecutor:
    """Common machinery of the serial and process-pool executors.

    Lifecycle: construct, :meth:`bind` to a model (builds the weight
    store), run per-layer forward/backward segment batches through
    :meth:`run_forward` / :meth:`run_backward` (the
    :func:`~repro.parallel.dispatch.executor_dispatch` autograd node calls
    these), :meth:`refresh` after weight updates, :meth:`close` when done.
    Executors are context managers; ``with`` guarantees teardown.
    """

    kind = "serial"

    def __init__(self, telemetry=None):
        self.telemetry = telemetry
        self._store: Optional[SharedWeightStore] = None
        self._origin = 0.0
        self._worker_ids: Dict[int, int] = {}
        self._frozen = False

    # -- binding -------------------------------------------------------- #
    def bind(self, model, weight_format: str = "native") -> None:
        """Build the weight store for ``model``'s experts and start serving.

        ``model`` is a :class:`~repro.models.transformer.MoETransformer` or
        a bare MoE block.  ``weight_format`` is ``"native"`` (trainable,
        bit-compatible) or ``"int8"`` (inference-only, ~8x smaller
        resident/shipped weights).  Re-binding tears down the previous
        store (and pool) first.
        """
        if self._store is not None:
            self.close()
        self._store = self._build_store(model, weight_format)
        self._frozen = self._all_bases_frozen()
        self._origin = self._clock_origin()
        self._start()

    def _build_store(self, model, weight_format: str) -> SharedWeightStore:
        raise NotImplementedError

    def _start(self) -> None:
        """Hook: bring up compute resources after the store exists."""

    def _clock_origin(self) -> float:
        clock = (self.telemetry.tracer.clock
                 if self.telemetry is not None else None)
        if isinstance(clock, WallClock):
            return clock._origin
        return time.perf_counter()

    def _all_bases_frozen(self) -> bool:
        for experts in expert_groups(self._bound_model).values():
            for expert in experts:
                for proj in (expert.w_gate, expert.w_up, expert.w_down):
                    if getattr(proj, "base", proj).weight.requires_grad:
                        return False
        return True

    def _build_groups(self, model, weight_format: str,
                      use_shm: bool) -> SharedWeightStore:
        self._bound_model = model
        return SharedWeightStore(model, fmt=weight_format, use_shm=use_shm)

    # -- introspection -------------------------------------------------- #
    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has been called (and not closed)."""
        return self._store is not None

    @property
    def weight_format(self) -> Optional[str]:
        """The bound store's format, or ``None`` when unbound."""
        return self._store.fmt if self._store is not None else None

    @property
    def layers(self) -> Tuple[int, ...]:
        """Layers the executor can serve."""
        return self._store.layers if self._store is not None else ()

    def can_run(self, layer: int) -> bool:
        """Whether this executor should handle ``layer`` right now.

        False when unbound, when the layer has no segment, or when the
        store is int8 and gradients are enabled (quantized weights carry
        no meaningful gradient — callers fall back to in-process dispatch).
        """
        if self._store is None or layer not in self._store.layers:
            return False
        return self._store.fmt == "native" or not is_grad_enabled()

    # -- execution ------------------------------------------------------ #
    def run_forward(self, layer: int, tasks: Sequence[tuple]) -> List[np.ndarray]:
        """Run forward tasks ``(layer, expert_id, x, lora)``; returns outputs."""
        results = self._execute("forward", tasks)
        self._record("forward", layer, [r[-1] for r in results],
                     sum(t[2].shape[0] for t in tasks))
        return [r[0] for r in results]

    def run_backward(self, layer: int, tasks: Sequence[tuple]) -> List[tuple]:
        """Run backward tasks; returns ``(gx, grads)`` pairs per task."""
        results = self._execute("backward", tasks)
        self._record("backward", layer, [r[-1] for r in results],
                     sum(t[2].shape[0] for t in tasks))
        return [(r[0], r[1]) for r in results]

    def _execute(self, phase: str, tasks: Sequence[tuple]) -> List[tuple]:
        raise NotImplementedError

    def _record(self, phase: str, layer: int, timings, rows: int) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        for pid, start, duration in timings:
            slot = self._worker_ids.setdefault(pid, len(self._worker_ids))
            telemetry.record_span(f"parallel.{phase}", start, duration,
                                  category="parallel",
                                  track=f"parallel-w{slot}", layer=layer)
        telemetry.counter("parallel.tasks", phase=phase).add(len(timings))
        telemetry.counter("parallel.rows", phase=phase).add(rows)

    # -- weight updates / teardown -------------------------------------- #
    def refresh(self) -> None:
        """Propagate updated expert weights into the store.

        A no-op when every base weight is frozen (the LoRA fine-tuning
        recipe: adapters ship per task, bases never change) — so calling
        this after every optimizer step is free in the common case.
        """
        if self._store is None:
            raise RuntimeError("executor is not bound")
        if self._frozen:
            return
        self._store.refresh()

    def close(self) -> None:
        """Tear down compute resources and the weight store (idempotent)."""
        self._stop()
        if self._store is not None:
            self._store.close()
            self._store = None

    def _stop(self) -> None:
        """Hook: tear down compute resources."""

    def __enter__(self) -> "ExpertExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialExpertExecutor(ExpertExecutor):
    """Bit-compatible serial fallback: same kernels, same store, no pool.

    Useful as the equivalence baseline for the process pool, and as the
    zero-dependency path on single-core boxes.  Uses plain in-process
    buffers (``use_shm=False``), so nothing touches ``/dev/shm``.
    """

    kind = "serial"
    num_workers = 0

    def __init__(self, telemetry=None):
        super().__init__(telemetry=telemetry)
        self._view: Optional[WorkerWeightView] = None

    def _build_store(self, model, weight_format: str) -> SharedWeightStore:
        return self._build_groups(model, weight_format, use_shm=False)

    def _start(self) -> None:
        self._view = WorkerWeightView(self._store.handle())

    def _execute(self, phase: str, tasks: Sequence[tuple]) -> List[tuple]:
        if self._view is None:
            raise RuntimeError("executor is not bound")
        fn = _forward_task if phase == "forward" else _backward_task
        return [fn(task, self._view, self._origin) for task in tasks]

    def _stop(self) -> None:
        if self._view is not None:
            self._view.close()
            self._view = None


def _shutdown_pool(pool, store) -> None:
    """Finalizer: hard-stop the pool, then release the shared memory."""
    try:
        pool.terminate()
        pool.join()
    except Exception:
        pass
    store.close()


class ProcessPoolExpertExecutor(ExpertExecutor):
    """Fan expert segments out to ``num_workers`` forked processes.

    Workers attach the shared-memory weight segments once at pool start
    (via the pool initializer) and afterwards receive only activation
    segments; ``chunksize=1`` keeps per-expert tasks independently
    schedulable across workers (the Comet-style fine-grained overlap the
    issue motivates).  Teardown is triple-guarded: explicit :meth:`close`,
    context-manager exit, and a ``weakref.finalize`` that terminates the
    pool and unlinks the segments even if the owner forgets — so an
    exception (or ``KeyboardInterrupt``) in the driving loop never leaks
    ``/dev/shm`` blocks or worker processes.
    """

    kind = "process"

    def __init__(self, num_workers: int, telemetry=None,
                 start_method: Optional[str] = None):
        super().__init__(telemetry=telemetry)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._pool = None
        self._finalizer = None

    def _build_store(self, model, weight_format: str) -> SharedWeightStore:
        return self._build_groups(model, weight_format, use_shm=True)

    def _start(self) -> None:
        ctx = multiprocessing.get_context(self._start_method)
        self._pool = ctx.Pool(self.num_workers, initializer=_worker_init,
                              initargs=(self._store.handle(), self._origin))
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._pool, self._store)

    def _execute(self, phase: str, tasks: Sequence[tuple]) -> List[tuple]:
        if self._pool is None:
            raise RuntimeError("executor is not bound")
        fn = _pool_forward if phase == "forward" else _pool_backward
        return self._pool.map(fn, tasks, chunksize=1)

    def _stop(self) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard-stop workers (no waiting for in-flight tasks) and clean up."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None


def make_executor(num_workers: int, telemetry=None) -> ExpertExecutor:
    """``num_workers <= 0`` → serial, otherwise a process pool of that size."""
    if num_workers <= 0:
        return SerialExpertExecutor(telemetry=telemetry)
    return ProcessPoolExpertExecutor(num_workers, telemetry=telemetry)
