"""Multi-core expert-parallel execution with shared-memory weights.

The package turns the fused MoE dispatch's per-expert segments into
independently schedulable tasks:

* :mod:`~repro.parallel.shm` — :class:`SharedWeightStore` places each MoE
  layer's expert weights in one shared-memory segment (``native`` float64
  or ``int8`` per-channel-quantized), rebuilt in place only on weight
  update; :class:`WorkerWeightView` attaches read-only from any process.
* :mod:`~repro.parallel.executor` — :class:`ProcessPoolExpertExecutor`
  fans segments out to N forked workers; :class:`SerialExpertExecutor` is
  the bit-compatible in-process fallback running the identical kernels.
* :mod:`~repro.parallel.dispatch` — :func:`executor_dispatch`, the
  one-node-per-layer autograd integration the hot paths call.

Opt in through the knobs: ``Trainer(..., executor=...)``,
``LiveDecodeEngine(..., executor=..., weight_format=...)``, or directly
``MoEBlock.executor`` / ``MoETransformer.set_expert_executor``.  See
``docs/ARCHITECTURE.md`` ("Parallel execution & quantization") and the
knob table in ``docs/API.md``.
"""

from .dispatch import executor_dispatch
from .executor import (EXECUTOR_KINDS, ExpertExecutor,
                       ProcessPoolExpertExecutor, SerialExpertExecutor,
                       make_executor)
from .shm import (WEIGHT_FORMATS, LayerSpec, SharedWeightStore, StoreHandle,
                  WorkerWeightView, expert_groups, expert_supported)

__all__ = [
    "ExpertExecutor", "SerialExpertExecutor", "ProcessPoolExpertExecutor",
    "make_executor", "EXECUTOR_KINDS",
    "SharedWeightStore", "WorkerWeightView", "StoreHandle", "LayerSpec",
    "WEIGHT_FORMATS", "expert_groups", "expert_supported",
    "executor_dispatch",
]
