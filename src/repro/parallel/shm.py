"""Shared-memory expert weight store for the process-pool executor.

One read-only buffer per expert group (= one MoE layer) holds the frozen
projection matrices of every expert in that layer, in one of two formats:

``native``
    The raw ``float64`` matrices, laid out back to back.  Workers map the
    buffer and run GEMMs directly against the views — zero copies, and a
    master-side :meth:`SharedWeightStore.refresh` (an in-place ``memcpy``)
    is instantly visible to every attached worker.

``int8``
    The :mod:`repro.nn.quant` format — per-output-channel int8 codes plus
    float scales — at roughly 1/8 the native bytes.  Workers dequantize an
    expert on first use and cache the dense matrices keyed by the segment's
    version counter, so a refresh invalidates exactly once.

Each segment starts with an 8-byte ``uint64`` version header the master
bumps on every refresh.  With ``use_shm=True`` segments live in
``multiprocessing.shared_memory`` blocks; workers attach by name through
:class:`WorkerWeightView` and never unregister them (under the ``fork``
start method the resource tracker is shared and deduplicates
registrations), while the master alone closes *and unlinks* at
:meth:`SharedWeightStore.close`.  With ``use_shm=False`` the segments are
plain in-process ``bytearray`` buffers — the serial executor runs the exact
same attach/view/dequant code against them, which is what keeps the
fallback bit-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import Linear
from ..nn.quant import quantize_tensor

WEIGHT_FORMATS = ("native", "int8")
HEADER_NBYTES = 8
_PROJECTIONS = ("w_gate", "w_up", "w_down")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass(frozen=True)
class LayerSpec:
    """Picklable description of one layer's weight segment."""

    layer: int
    num_experts: int
    hidden: int
    ffn: int
    fmt: str
    shm_name: Optional[str]
    nbytes: int


@dataclass(frozen=True)
class StoreHandle:
    """What a worker needs to attach: specs plus inline buffers (if any).

    ``buffers`` is ``None`` for shared-memory stores (workers attach by
    ``shm_name``) and holds the actual segment buffers for inline stores.
    """

    specs: Tuple[LayerSpec, ...]
    buffers: Optional[Dict[int, bytearray]]


def _expert_arrays(spec: LayerSpec):
    """``(key, shape, dtype)`` of every array in one expert's slice."""
    h, f = spec.hidden, spec.ffn
    shapes = {"w_gate": (f, h), "w_up": (f, h), "w_down": (h, f)}
    out = []
    for proj in _PROJECTIONS:
        if spec.fmt == "native":
            out.append((proj, shapes[proj], np.float64))
        else:
            out.append((f"{proj}.codes", shapes[proj], np.int8))
            out.append((f"{proj}.scales", (shapes[proj][0],), np.float64))
    return out


def _segment_nbytes(spec: LayerSpec) -> int:
    offset = HEADER_NBYTES
    for _ in range(spec.num_experts):
        for _, shape, dtype in _expert_arrays(spec):
            offset = _align8(offset) + int(np.prod(shape)) * \
                np.dtype(dtype).itemsize
    return _align8(offset)


def _segment_views(buf, spec: LayerSpec,
                   writeable: bool = True
                   ) -> Tuple[np.ndarray, List[Dict[str, np.ndarray]]]:
    """Build the (version header, per-expert array dict) views over ``buf``."""
    version = np.frombuffer(buf, dtype=np.uint64, count=1)
    offset = HEADER_NBYTES
    experts: List[Dict[str, np.ndarray]] = []
    for _ in range(spec.num_experts):
        views: Dict[str, np.ndarray] = {}
        for key, shape, dtype in _expert_arrays(spec):
            offset = _align8(offset)
            count = int(np.prod(shape))
            arr = np.frombuffer(buf, dtype=dtype, count=count,
                                offset=offset).reshape(shape)
            if not writeable:
                arr.flags.writeable = False
            views[key] = arr
            offset += count * np.dtype(dtype).itemsize
        experts.append(views)
    if not writeable:
        version.flags.writeable = False
    return version, experts


def base_weight(proj) -> np.ndarray:
    """The frozen dense weight of a (possibly LoRA-wrapped) projection."""
    return getattr(proj, "base", proj).weight.data


def expert_supported(expert) -> Optional[str]:
    """``None`` if the executor can host ``expert``, else the reason not.

    Supported experts carry three bias-free projections, each either a plain
    :class:`~repro.nn.layers.Linear` or a LoRA wrapper around one with
    dropout disabled (the worker kernel materializes ``W + s·BA`` exactly;
    a dropout branch would need the master's RNG stream).
    """
    for name in _PROJECTIONS:
        proj = getattr(expert, name, None)
        if proj is None:
            return f"expert has no projection {name!r}"
        if hasattr(proj, "lora_a"):
            base = getattr(proj, "base", None)
            if type(base) is not Linear or base.bias is not None:
                return f"{name}: LoRA base is not a bias-free Linear"
            if getattr(proj.config, "dropout", 0.0) > 0:
                return f"{name}: LoRA dropout is not supported in workers"
        elif type(proj) is not Linear or proj.bias is not None:
            return f"{name}: not a bias-free Linear"
    return None


def expert_groups(model) -> Dict[int, List]:
    """Group a model's experts by layer: ``{layer: [expert, ...]}``.

    Accepts anything with ``iter_experts()`` (a full
    :class:`~repro.models.transformer.MoETransformer`) or a bare MoE block
    exposing ``.experts`` (and optionally ``.layer_index``).
    """
    if hasattr(model, "iter_experts"):
        pairs: Dict[int, List] = {}
        for layer, expert_id, expert in model.iter_experts():
            pairs.setdefault(layer, []).append((expert_id, expert))
        return {layer: [e for _, e in sorted(group, key=lambda p: p[0])]
                for layer, group in pairs.items()}
    if hasattr(model, "experts"):
        return {int(getattr(model, "layer_index", 0)): list(model.experts)}
    raise TypeError(f"cannot enumerate experts of {type(model).__name__}")


class SharedWeightStore:
    """Master-side owner of the per-layer weight segments.

    Builds one segment per MoE layer from the model's current expert
    weights, exposes a picklable :meth:`handle` for workers, and rewrites
    segments in place on :meth:`refresh` (bumping each version header).
    The master is the only party that ever unlinks the shared-memory
    blocks; call :meth:`close` exactly once when done.
    """

    def __init__(self, model, fmt: str = "native", use_shm: bool = True):
        if fmt not in WEIGHT_FORMATS:
            raise ValueError(f"weight format must be one of {WEIGHT_FORMATS},"
                             f" got {fmt!r}")
        self.fmt = fmt
        self.use_shm = use_shm
        self._groups = expert_groups(model)
        if not self._groups:
            raise ValueError("model has no experts to place in the store")
        for layer, experts in sorted(self._groups.items()):
            for expert_id, expert in enumerate(experts):
                reason = expert_supported(expert)
                if reason is not None:
                    raise ValueError(f"layer {layer} expert {expert_id} "
                                     f"unsupported: {reason}")
        self._shms: Dict[int, shared_memory.SharedMemory] = {}
        self._buffers: Dict[int, bytearray] = {}
        self._segments: Dict[int, Tuple[np.ndarray,
                                        List[Dict[str, np.ndarray]]]] = {}
        self._specs: List[LayerSpec] = []
        self._closed = False
        for layer, experts in sorted(self._groups.items()):
            wd = base_weight(experts[0].w_down)
            hidden, ffn = wd.shape
            spec = LayerSpec(layer=layer, num_experts=len(experts),
                             hidden=hidden, ffn=ffn, fmt=fmt,
                             shm_name=None, nbytes=0)
            nbytes = _segment_nbytes(spec)
            if use_shm:
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                self._shms[layer] = shm
                buf = shm.buf
                spec = LayerSpec(layer=layer, num_experts=len(experts),
                                 hidden=hidden, ffn=ffn, fmt=fmt,
                                 shm_name=shm.name, nbytes=nbytes)
            else:
                buf = bytearray(nbytes)
                self._buffers[layer] = buf
                spec = LayerSpec(layer=layer, num_experts=len(experts),
                                 hidden=hidden, ffn=ffn, fmt=fmt,
                                 shm_name=None, nbytes=nbytes)
            self._specs.append(spec)
            self._segments[layer] = _segment_views(buf, spec)
            self._write_layer(layer)
            self._segments[layer][0][0] = 1

    # -- building / refreshing ------------------------------------------ #
    def _write_layer(self, layer: int) -> None:
        _, views = self._segments[layer]
        for expert, dst in zip(self._groups[layer], views):
            for proj in _PROJECTIONS:
                weight = base_weight(getattr(expert, proj))
                if self.fmt == "native":
                    np.copyto(dst[proj], weight)
                else:
                    qt = quantize_tensor(weight)
                    np.copyto(dst[f"{proj}.codes"], qt.codes)
                    np.copyto(dst[f"{proj}.scales"], qt.scales)

    def refresh(self) -> None:
        """Rewrite every segment from the live expert weights, in place.

        Attached workers see native-format updates immediately (same
        mapping) and int8 updates on their next dequantization (the bumped
        version invalidates their cache).
        """
        self._assert_open()
        for layer in self._segments:
            self._write_layer(layer)
            version, _ = self._segments[layer]
            version[0] += 1

    # -- sharing -------------------------------------------------------- #
    def handle(self) -> StoreHandle:
        """Picklable attachment handle for :class:`WorkerWeightView`."""
        self._assert_open()
        return StoreHandle(specs=tuple(self._specs),
                           buffers=self._buffers if not self.use_shm
                           else None)

    @property
    def layers(self) -> Tuple[int, ...]:
        """Layers with a segment in the store."""
        return tuple(sorted(self._segments))

    @property
    def nbytes(self) -> int:
        """Total bytes across all segments."""
        return sum(spec.nbytes for spec in self._specs)

    def version(self, layer: int) -> int:
        """Current version counter of one layer's segment."""
        self._assert_open()
        return int(self._segments[layer][0][0])

    # -- teardown ------------------------------------------------------- #
    def _assert_open(self) -> None:
        if self._closed:
            raise RuntimeError("SharedWeightStore is closed")

    def close(self) -> None:
        """Drop all views and close + unlink the shared-memory blocks.

        Idempotent; the master owns the segments, so this is the single
        point where they are returned to the OS.
        """
        if self._closed:
            return
        self._closed = True
        # numpy views keep the mmap's buffer exported; drop them before
        # closing or SharedMemory.close() raises BufferError.
        self._segments = {}
        for shm in self._shms.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shms = {}
        self._buffers = {}


class WorkerWeightView:
    """Read-only view of a :class:`StoreHandle`, master- or worker-side.

    ``dense_weights(layer, expert_id)`` returns the ``(w_gate, w_up,
    w_down)`` dense matrices: direct buffer views in native format, a
    version-cached dequantization in int8.  Shared-memory segments are
    attached by name and deliberately **not** unregistered from the
    resource tracker (see the module docstring); only the creating master
    unlinks.
    """

    def __init__(self, handle: StoreHandle):
        self._shms: List[shared_memory.SharedMemory] = []
        self._segments: Dict[int, Tuple[np.ndarray,
                                        List[Dict[str, np.ndarray]],
                                        LayerSpec]] = {}
        self._dequant: Dict[Tuple[int, int],
                            Tuple[int, Tuple[np.ndarray, ...]]] = {}
        for spec in handle.specs:
            if spec.shm_name is not None:
                shm = shared_memory.SharedMemory(name=spec.shm_name)
                self._shms.append(shm)
                buf = shm.buf
            else:
                buf = handle.buffers[spec.layer]
            version, views = _segment_views(buf, spec, writeable=False)
            self._segments[spec.layer] = (version, views, spec)

    @property
    def layers(self) -> Tuple[int, ...]:
        """Layers this view can serve."""
        return tuple(sorted(self._segments))

    def dense_weights(self, layer: int,
                      expert_id: int) -> Tuple[np.ndarray, ...]:
        """``(w_gate, w_up, w_down)`` dense matrices for one expert."""
        version, views, spec = self._segments[layer]
        expert = views[expert_id]
        if spec.fmt == "native":
            return tuple(expert[proj] for proj in _PROJECTIONS)
        current = int(version[0])
        key = (layer, expert_id)
        cached = self._dequant.get(key)
        if cached is not None and cached[0] == current:
            return cached[1]
        dense = tuple(expert[f"{proj}.codes"].astype(np.float64)
                      * expert[f"{proj}.scales"][:, None]
                      for proj in _PROJECTIONS)
        self._dequant[key] = (current, dense)
        return dense

    def close(self) -> None:
        """Drop views and close (never unlink) the attached segments."""
        self._segments = {}
        self._dequant = {}
        for shm in self._shms:
            shm.close()
        self._shms = []
