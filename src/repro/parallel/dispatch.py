"""The executor-backed MoE dispatch: one autograd node per layer.

:func:`executor_dispatch` is the drop-in counterpart of
:func:`repro.models.moe_block.fused_dispatch` when an
:class:`~repro.parallel.executor.ExpertExecutor` is attached: the same
sort → segment → combine structure, but the per-expert SwiGLU segments run
through ``executor.run_forward`` / ``run_backward`` (one pooled round trip
each way per layer) instead of in-process autograd sub-nodes, and the
whole layer collapses into a single :class:`~repro.nn.tensor.Tensor` graph
node whose parents are ``(tokens, combine_weights, *trainable weights)``.

The combine arithmetic is copied from ``_combine_segments`` verbatim and
the worker kernels replay ``fused_swiglu``'s operation order, so for
native-format plain-Linear experts the node is bit-identical to the
in-process fused path; for LoRA experts the workers materialize
``W + s·BA`` (the merged weight), which agrees with the layered in-process
computation to float64 rounding.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.tensor import Tensor, _segment_sum_rows

_PROJ_INDEX = {"w_gate": 0, "w_up": 1, "w_down": 2}


def _adapter_payload(expert):
    """Per-projection ``(A, B, scaling)`` triples, or ``None`` if plain.

    The arrays are the live parameter buffers (no copies); tasks pickle
    them on their way to the workers, so the workers always see the
    adapters as of the current step.
    """
    projections = (expert.w_gate, expert.w_up, expert.w_down)
    if not any(hasattr(p, "lora_a") for p in projections):
        return None
    return tuple((p.lora_a.data, p.lora_b.data, p.config.scaling)
                 for p in projections)


def executor_dispatch(executor, layer: int, experts, tokens: Tensor,
                      gate_out,
                      expert_order: Optional[List[int]] = None) -> Tensor:
    """Run one MoE layer's dispatch/combine through ``executor``.

    Arguments mirror :func:`~repro.models.moe_block.fused_dispatch` plus
    the ``executor`` and its ``layer`` id.  ``expert_order`` (the runtime
    broker's per-worker grouping) only permutes task submission order;
    outputs are bit-identical across orderings, same as the in-process
    path.
    """
    num_tokens = tokens.shape[0]
    num_experts = len(experts)
    top_k = gate_out.top_k
    combine_weights = gate_out.combine_weights
    flat_experts = gate_out.expert_indices.reshape(-1)  # token-major
    sort_order = np.argsort(flat_experts, kind="stable")
    counts = np.bincount(flat_experts, minlength=num_experts)
    starts = np.concatenate([[0], np.cumsum(counts)])
    token_ids_sorted = sort_order // top_k

    tasks = []
    seg_expert_ids: List[int] = []
    seg_token_ids: List[np.ndarray] = []
    seg_slots: List[np.ndarray] = []
    seg_lora = []
    for expert_id in (expert_order if expert_order is not None
                      else range(num_experts)):
        lo, hi = starts[expert_id], starts[expert_id + 1]
        if lo == hi:
            continue
        ids = token_ids_sorted[lo:hi]
        lora = _adapter_payload(experts[expert_id])
        tasks.append((layer, int(expert_id), tokens.data[ids], lora))
        seg_expert_ids.append(int(expert_id))
        seg_token_ids.append(ids)
        seg_slots.append(sort_order[lo:hi])
        seg_lora.append(lora)

    seg_outputs = executor.run_forward(layer, tasks)

    order = (seg_slots[0] if len(seg_slots) == 1
             else np.concatenate(seg_slots))
    inv_order = np.empty_like(order)
    inv_order[order] = np.arange(order.size)
    cat = (seg_outputs[0] if len(seg_outputs) == 1
           else np.concatenate(seg_outputs, axis=0))
    w_sorted = combine_weights.data.reshape(-1)[order]
    hidden = cat.shape[1]
    weighted = cat * w_sorted[:, None]
    out_data = weighted[inv_order].reshape(num_tokens, top_k,
                                           hidden).sum(axis=1)
    token_ids = order // top_k
    seg_lengths = [t[2].shape[0] for t in tasks]
    bounds = np.cumsum(seg_lengths)[:-1]

    # One graph node for the whole layer: map every trainable weight of the
    # active experts to a parent slot, so executor-computed gradients land
    # exactly where the in-process sub-graphs would put them.
    parents = [tokens, combine_weights]
    slots = []  # (segment index, "w"|"a"|"b", projection index)
    need_w = [False] * len(tasks)
    need_lora = [False] * len(tasks)
    for i, expert_id in enumerate(seg_expert_ids):
        expert = experts[expert_id]
        for pi, proj in enumerate((expert.w_gate, expert.w_up,
                                   expert.w_down)):
            base = getattr(proj, "base", proj)
            if base.weight.requires_grad:
                parents.append(base.weight)
                slots.append((i, "w", pi))
                need_w[i] = True
            if hasattr(proj, "lora_a"):
                if proj.lora_a.requires_grad:
                    parents.append(proj.lora_a)
                    slots.append((i, "a", pi))
                    need_lora[i] = True
                if proj.lora_b.requires_grad:
                    parents.append(proj.lora_b)
                    slots.append((i, "b", pi))
                    need_lora[i] = True

    def backward(g: np.ndarray):
        # Combine backward — identical single pass to _combine_segments.
        g_rows = g[token_ids]
        g_weights_sorted = np.einsum("ij,ij->i", g_rows, cat)
        g_weights = np.empty(order.size, dtype=g_weights_sorted.dtype)
        g_weights[order] = g_weights_sorted
        g_cat = g_rows * w_sorted[:, None]
        seg_gys = (np.split(g_cat, bounds, axis=0) if len(tasks) > 1
                   else [g_cat])
        need_gx = tokens.requires_grad
        btasks = [(layer, seg_expert_ids[i], tasks[i][2], seg_gys[i],
                   seg_lora[i], need_gx, need_w[i], need_lora[i])
                  for i in range(len(tasks))]
        results = executor.run_backward(layer, btasks)
        g_tokens = None
        if need_gx:
            gx_cat = (results[0][0] if len(results) == 1 else
                      np.concatenate([r[0] for r in results], axis=0))
            all_ids = (seg_token_ids[0] if len(seg_token_ids) == 1 else
                       np.concatenate(seg_token_ids))
            g_tokens = _segment_sum_rows(gx_cat, all_ids, num_tokens)
        param_grads = []
        for i, kind, pi in slots:
            grads = results[i][1]
            if kind == "w":
                param_grads.append(grads["w"][pi])
            elif kind == "a":
                param_grads.append(grads["lora"][pi][0])
            else:
                param_grads.append(grads["lora"][pi][1])
        return (g_tokens, g_weights.reshape(num_tokens, top_k),
                *param_grads)

    return Tensor._make(out_data, tuple(parents), backward)
