"""LoRA injection: walk a module tree, wrap matching Linear layers.

``inject_lora`` reproduces the paper's fine-tuning configuration: the whole
pre-trained model is frozen, adapters are added to every linear layer except
the gating router, and only adapter parameters remain trainable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..nn.layers import Linear, Module
from .adapter import LoRALinear
from .config import LoRAConfig


@dataclass
class LoRAReport:
    """Summary of an injection pass (useful for logging and tests)."""

    adapted_paths: List[str] = field(default_factory=list)
    skipped_paths: List[str] = field(default_factory=list)
    trainable_params: int = 0
    frozen_params: int = 0

    @property
    def num_adapted(self) -> int:
        """Linear layers that received adapters."""
        return len(self.adapted_paths)

    def trainable_fraction(self) -> float:
        """Trainable share of all parameters."""
        total = self.trainable_params + self.frozen_params
        return self.trainable_params / total if total else 0.0


def _replace_children(module: Module, path: str, config: LoRAConfig,
                      rng: np.random.Generator, report: LoRAReport) -> None:
    """Recursively wrap matching Linear attributes of ``module`` in place."""
    for attr, value in list(vars(module).items()):
        child_path = f"{path}.{attr}" if path else attr
        if isinstance(value, Linear):
            if config.matches(child_path):
                setattr(module, attr, LoRALinear(value, config, rng=rng))
                report.adapted_paths.append(child_path)
            else:
                report.skipped_paths.append(child_path)
        elif isinstance(value, LoRALinear):
            continue  # already adapted
        elif isinstance(value, Module):
            _replace_children(value, child_path, config, rng, report)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Linear) and config.matches(f"{child_path}.{i}"):
                    value = list(value)
                    value[i] = LoRALinear(item, config, rng=rng)
                    setattr(module, attr, value)
                    report.adapted_paths.append(f"{child_path}.{i}")
                elif isinstance(item, Module):
                    _replace_children(item, f"{child_path}.{i}", config, rng, report)
        elif isinstance(value, dict):
            for key, item in value.items():
                if isinstance(item, Module):
                    _replace_children(item, f"{child_path}.{key}", config, rng, report)


def inject_lora(model: Module, config: Optional[LoRAConfig] = None) -> LoRAReport:
    """Freeze ``model`` and attach LoRA adapters to matching linear layers.

    Returns a :class:`LoRAReport`.  After injection,
    ``model.trainable_parameters()`` contains exactly the adapter matrices.
    """
    config = config or LoRAConfig()
    model.freeze()
    rng = np.random.default_rng(config.seed)
    report = LoRAReport()
    _replace_children(model, "", config, rng, report)
    if not report.adapted_paths:
        raise ValueError("LoRA injection matched no linear layers; "
                         "check target_substrings against the model's paths")
    report.trainable_params = model.num_parameters(trainable_only=True)
    report.frozen_params = model.num_parameters() - report.trainable_params
    return report


def merge_lora(model: Module) -> int:
    """Fold every adapter back into a plain Linear; return the merge count."""
    merged = 0

    def _merge(module: Module) -> None:
        nonlocal merged
        for attr, value in list(vars(module).items()):
            if isinstance(value, LoRALinear):
                setattr(module, attr, value.merge())
                merged += 1
            elif isinstance(value, Module):
                _merge(value)
            elif isinstance(value, (list, tuple)):
                new_items = list(value)
                changed = False
                for i, item in enumerate(new_items):
                    if isinstance(item, LoRALinear):
                        new_items[i] = item.merge()
                        merged += 1
                        changed = True
                    elif isinstance(item, Module):
                        _merge(item)
                if changed:
                    setattr(module, attr, new_items)
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, LoRALinear):
                        value[key] = item.merge()
                        merged += 1
                    elif isinstance(item, Module):
                        _merge(item)

    _merge(model)
    return merged


def lora_parameters(model: Module):
    """Return only the adapter parameters of an injected model."""
    params = []
    for name, p in model.named_parameters():
        if ("lora_a" in name or "lora_b" in name) and p.requires_grad:
            params.append(p)
    return params
