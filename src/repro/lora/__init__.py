"""Parameter-efficient fine-tuning via Low-Rank Adaptation (LoRA)."""

from .adapter import LoRALinear
from .config import LoRAConfig
from .inject import LoRAReport, inject_lora, lora_parameters, merge_lora

__all__ = ["LoRAConfig", "LoRALinear", "LoRAReport", "inject_lora",
           "merge_lora", "lora_parameters"]
