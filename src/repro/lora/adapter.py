"""The LoRA adapter layer.

Implements ``y = W x + (alpha/r) * B A x`` from Hu et al. (LoRA), wrapping an
existing frozen :class:`~repro.nn.layers.Linear`.  ``A`` is Gaussian-
initialized and ``B`` starts at zero, so the wrapped layer's initial output
is bit-identical to the base layer — a property the tests assert.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.functional import dropout as dropout_fn
from ..nn.layers import Linear, Module, Parameter
from ..nn.tensor import Tensor
from .config import LoRAConfig


class LoRALinear(Module):
    """A frozen linear layer with a trainable low-rank residual branch."""

    def __init__(self, base: Linear, config: LoRAConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.base = base
        self.config = config
        in_features = base.in_features
        out_features = base.out_features
        # Freeze the pre-trained weight; only A/B train.
        for p in base.parameters():
            p.requires_grad = False
        self.lora_a = Parameter(rng.normal(0.0, 1.0 / config.rank,
                                           size=(config.rank, in_features)))
        self.lora_b = Parameter(np.zeros((out_features, config.rank)))
        self._dropout_rng = np.random.default_rng(config.seed + 1)

    @property
    def in_features(self) -> int:
        """Input feature size."""
        return self.base.in_features

    @property
    def out_features(self) -> int:
        """Output feature size."""
        return self.base.out_features

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        out = self.base(x)
        branch_in = x
        if self.config.dropout > 0:
            branch_in = dropout_fn(branch_in, self.config.dropout,
                                   self._dropout_rng, training=self.training)
        update = (branch_in @ self.lora_a.T) @ self.lora_b.T
        return out + update * self.config.scaling

    def merged_weight(self) -> np.ndarray:
        """Return ``W + (alpha/r) B A`` as a dense matrix."""
        return self.base.weight.data + \
            self.config.scaling * (self.lora_b.data @ self.lora_a.data)

    def merge(self) -> Linear:
        """Fold the adapter into a fresh plain :class:`Linear` layer."""
        merged = Linear(self.in_features, self.out_features,
                        bias=self.base.bias is not None)
        merged.weight.data = self.merged_weight().copy()
        if self.base.bias is not None:
            merged.bias.data = self.base.bias.data.copy()
        return merged

    def num_lora_params(self) -> int:
        """Trainable adapter parameter count."""
        return int(self.lora_a.size + self.lora_b.size)
