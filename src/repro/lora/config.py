"""LoRA configuration.

Defaults match the paper's fine-tuning setup (Section V-A): rank 8, alpha 16,
adapting every linear layer *except* the gating mechanism (fine-tuning the
gate degrades performance per Shen et al., and a frozen gate is also what
makes the locality profile a safe placement input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class LoRAConfig:
    """Hyperparameters for low-rank adaptation.

    Attributes
    ----------
    rank:
        The inner dimension ``d`` of the ``B @ A`` update.
    alpha:
        Scaling numerator; the effective update is ``(alpha / rank) * B A x``.
    target_substrings:
        A linear layer is adapted iff its dotted module path contains one of
        these substrings *and* none of ``exclude_substrings``.
    exclude_substrings:
        Paths to skip — by default the router, to keep the gate frozen.
    dropout:
        Dropout applied to the LoRA branch input (0 disables).
    seed:
        Seed for the A-matrix initialization.
    """

    rank: int = 8
    alpha: float = 16.0
    target_substrings: Tuple[str, ...] = (
        "q_proj", "k_proj", "v_proj", "o_proj",
        "w_gate", "w_up", "w_down", "lm_head",
    )
    exclude_substrings: Tuple[str, ...] = ("gate.router",)
    dropout: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")

    @property
    def scaling(self) -> float:
        """Effective LoRA scale ``alpha / rank``."""
        return self.alpha / self.rank

    def matches(self, module_path: str) -> bool:
        """Whether a module at ``module_path`` should receive an adapter."""
        if any(excl in module_path for excl in self.exclude_substrings):
            return False
        return any(t in module_path for t in self.target_substrings)
