"""VELA: communication-efficient MoE fine-tuning with locality-aware expert
placement — a from-scratch reproduction of Hu, Kang & Li (ICDCS 2025).

Public API tour:

* ``repro.nn`` — numpy autograd substrate (tensors, layers, optimizers).
* ``repro.models`` — MoE transformers (live tiny models + Mixtral-scale specs).
* ``repro.lora`` — LoRA parameter-efficient fine-tuning.
* ``repro.data`` — synthetic Tiny-Shakespeare / WikiText / Alpaca corpora.
* ``repro.routing`` — traces, locality profiling, synthetic routers,
  Theorem-1 stability analysis.
* ``repro.cluster`` / ``repro.comm`` — hardware topology and communication
  cost models (the paper's Eq. (5)-(7)).
* ``repro.placement`` — the LP-based locality-aware placement plus all
  baselines (sequential, random, expert-parallel, greedy, exact MILP).
* ``repro.runtime`` — the master-worker and expert-parallel step engines.
* ``repro.core`` — :class:`VelaSystem`, the profile->place->run facade.
* ``repro.finetune`` — live-model LoRA trainer (generates real traces).
* ``repro.bench`` — workloads and experiments regenerating every figure.
"""

from .core import (PAPER_STRATEGIES, VelaConfig, VelaSystem,
                   compare_strategies, make_strategy, reduction_vs)
from .placement import (ExpertParallelPlacement, GreedyPlacement,
                        LocalityAwarePlacement, Placement, PlacementProblem,
                        RandomPlacement, SequentialPlacement)
from .routing import (ALPACA_REGIME, WIKITEXT_REGIME, LocalityProfiler,
                      RoutingTrace, SyntheticRouter)

__version__ = "1.0.0"

__all__ = [
    "VelaSystem", "VelaConfig", "compare_strategies", "make_strategy",
    "reduction_vs", "PAPER_STRATEGIES",
    "Placement", "PlacementProblem", "LocalityAwarePlacement",
    "SequentialPlacement", "RandomPlacement", "ExpertParallelPlacement",
    "GreedyPlacement",
    "RoutingTrace", "SyntheticRouter", "LocalityProfiler",
    "WIKITEXT_REGIME", "ALPACA_REGIME",
    "__version__",
]
