"""Activation compression for master<->worker transfers.

The paper's preliminaries discuss weight quantization (QLoRA-style); the
communication analogue is quantizing the *activations* exchanged between the
broker and the expert managers.  Every transfer in Eq. (5) scales with the
bit depth ``b``, so int8 halves and int4 quarters the traffic — at the price
of quantization error injected into forward features and backward gradients.

This module provides:

* real absmax quantize/dequantize kernels (numpy) with measurable error,
* :class:`CompressionScheme` descriptors the engines consume through
  ``MoEModelConfig.bits_per_feature``, and
* an error model validated by tests (uniform-quantization SNR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class CompressionScheme:
    """A named activation-compression configuration.

    ``bits`` drives the communication volume; ``per_channel`` selects the
    quantization granularity (per-token rows vs whole-tensor).
    """

    name: str
    bits: int
    per_channel: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (4, 8, 16):
            raise ValueError(f"unsupported bit depth {self.bits}")

    @property
    def compression_ratio(self) -> float:
        """Traffic relative to the fp16 baseline."""
        return self.bits / 16.0


FP16 = CompressionScheme(name="fp16", bits=16)
INT8 = CompressionScheme(name="int8", bits=8)
INT4 = CompressionScheme(name="int4", bits=4)

SCHEMES = {s.name: s for s in (FP16, INT8, INT4)}


def quantize_absmax(x: np.ndarray, bits: int,
                    per_channel: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric absmax quantization.

    Returns ``(codes, scales)`` where ``codes`` are signed integers in
    ``[-(2^(b-1)-1), 2^(b-1)-1]`` and ``scales`` restore magnitudes.
    ``per_channel`` computes one scale per row (token), the granularity real
    systems use for activation tensors.
    """
    if bits < 2 or bits > 16:
        raise ValueError("bits must be in [2, 16]")
    x = np.asarray(x, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    if per_channel and x.ndim >= 2:
        absmax = np.abs(x).max(axis=-1, keepdims=True)
    else:
        absmax = np.abs(x).max()
    scales = np.where(absmax > 0, absmax / qmax, 1.0)
    codes = np.clip(np.round(x / scales), -qmax, qmax).astype(np.int32)
    return codes, np.asarray(scales)


def dequantize_absmax(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_absmax`."""
    return codes.astype(np.float64) * scales


def roundtrip(x: np.ndarray, scheme: CompressionScheme) -> np.ndarray:
    """Quantize-dequantize ``x`` under ``scheme`` (fp16 is near-lossless)."""
    if scheme.bits >= 16:
        return np.asarray(x, dtype=np.float16).astype(np.float64)
    codes, scales = quantize_absmax(x, scheme.bits, scheme.per_channel)
    return dequantize_absmax(codes, scales)


def quantization_error(x: np.ndarray, scheme: CompressionScheme) -> float:
    """Relative L2 error of a roundtrip: ``|x - Q(x)| / |x|``."""
    x = np.asarray(x, dtype=np.float64)
    norm = np.linalg.norm(x)
    if norm == 0:
        return 0.0
    return float(np.linalg.norm(x - roundtrip(x, scheme)) / norm)


def expected_relative_error(bits: int) -> float:
    """First-order expected relative error of uniform absmax quantization.

    For a roughly Gaussian activation tensor, rounding noise is uniform in
    ``[-s/2, s/2]`` with ``s = absmax / (2^(b-1)-1)``; relative L2 error is
    about ``s / (sqrt(12) * sigma)``.  With absmax ~ 4 sigma this gives
    ``4 / (sqrt(12) * (2^(b-1)-1))`` — used as a sanity envelope in tests.
    """
    qmax = 2 ** (bits - 1) - 1
    return 4.0 / (np.sqrt(12.0) * qmax)


def apply_scheme(config, scheme: CompressionScheme):
    """Return a model config whose transfers use ``scheme``'s bit depth.

    The engines already scale every transfer by
    ``config.bits_per_feature``, so compression plugs in as a config
    override; the quantization-error kernels quantify the accuracy cost.
    """
    return config.with_overrides(bits_per_feature=scheme.bits)
