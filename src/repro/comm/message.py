"""Message primitives for the simulated communication layer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MessageKind(Enum):
    """What a transfer carries, mirroring VELA's broker data flows (Fig. 4)."""

    TOKEN_DISPATCH = "token_dispatch"       # master -> worker, forward features
    TOKEN_RESULT = "token_result"           # worker -> master, expert outputs
    GRAD_DISPATCH = "grad_dispatch"         # master -> worker, output gradients
    GRAD_RESULT = "grad_result"             # worker -> master, input gradients
    STATUS_SYNC = "status_sync"             # EP all-to-all size exchange
    ALLREDUCE = "allreduce"                 # EP replicated-gradient sync


# Transfers in the two directions of each pass; the paper counts four
# exchanges per MoE block per step (Section V-B).
FORWARD_KINDS = (MessageKind.TOKEN_DISPATCH, MessageKind.TOKEN_RESULT)
BACKWARD_KINDS = (MessageKind.GRAD_DISPATCH, MessageKind.GRAD_RESULT)


@dataclass(frozen=True)
class Message:
    """A single point-to-point transfer.

    ``src``/``dst`` are worker ids, or ``-1`` for the master process.
    """

    src: int
    dst: int
    nbytes: float
    kind: MessageKind
    layer: int = -1
    step: int = -1

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


MASTER = -1
