"""Collective communication cost models.

These model the patterns that distinguish the paper's two execution
frameworks:

* master-worker **one-to-all** (VELA): the master exchanges data with every
  worker in parallel over independent links; a phase completes when the
  slowest worker finishes (Eq. (7)'s max).
* **all-to-all** (conventional expert parallelism): every device exchanges
  with every other, preceded by the status synchronization the paper
  describes ("all devices need to determine how many tokens they should
  receive from each other before performing the data transfer").
* **ring all-reduce**: EP's end-of-step gradient synchronization for the
  replicated non-expert layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.topology import ClusterTopology
from ..telemetry import Telemetry


def one_to_all_time(bytes_per_worker: np.ndarray,
                    topology: ClusterTopology,
                    telemetry: Optional[Telemetry] = None) -> float:
    """Master sends ``bytes_per_worker[n]`` to each worker concurrently.

    With ``telemetry``, the payload lands on the ``comm.one_to_all.bytes``
    bytes-on-wire counter.
    """
    bytes_per_worker = np.asarray(bytes_per_worker, dtype=np.float64)
    if bytes_per_worker.shape[0] != topology.num_workers:
        raise ValueError("bytes_per_worker length must equal num_workers")
    worst = 0.0
    for worker, nbytes in enumerate(bytes_per_worker):
        if nbytes <= 0:
            continue
        link = topology.master_link(worker)
        worst = max(worst, link.transfer_time(float(nbytes)))
    if telemetry is not None:
        telemetry.counter("comm.one_to_all.bytes").add(
            float(bytes_per_worker.clip(min=0.0).sum()))
    return worst


def all_to_all_time(byte_matrix: np.ndarray, topology: ClusterTopology,
                    telemetry: Optional[Telemetry] = None) -> float:
    """Synchronized all-to-all over a ``(N, N)`` byte matrix.

    Each device serializes its outgoing transfers (one NIC/copy engine); all
    devices proceed in parallel; the collective completes at a barrier when
    the slowest sender finishes.  Diagonal entries (local data) are free.

    With ``telemetry``, the off-diagonal payload (the bytes that actually
    touch a link) lands on the ``comm.all_to_all.bytes`` counter.
    """
    byte_matrix = np.asarray(byte_matrix, dtype=np.float64)
    n = topology.num_workers
    if byte_matrix.shape != (n, n):
        raise ValueError(f"byte matrix must be ({n}, {n})")
    worst = 0.0
    for src in range(n):
        elapsed = 0.0
        for dst in range(n):
            if src == dst or byte_matrix[src, dst] <= 0:
                continue
            link = topology.worker_link(src, dst)
            elapsed += link.transfer_time(float(byte_matrix[src, dst]))
        worst = max(worst, elapsed)
    if telemetry is not None:
        telemetry.counter("comm.all_to_all.bytes").add(
            float(byte_matrix.sum() - np.trace(byte_matrix)))
    return worst


def status_sync_time(topology: ClusterTopology) -> float:
    """The EP pre-exchange: an all-to-all of token counts plus a barrier.

    Counts are tiny (a few bytes per pair), so the cost is latency-dominated:
    every device must hear from every other before the payload all-to-all can
    be posted.  Model: one latency round over the slowest link, both ways.
    """
    slowest = max(topology.intra_link.latency_s, topology.cross_link.latency_s)
    return 2.0 * slowest


def ring_all_reduce_time(nbytes: float, topology: ClusterTopology,
                         telemetry: Optional[Telemetry] = None) -> float:
    """Bandwidth-optimal ring all-reduce across all workers.

    ``2 * (N-1)/N * nbytes`` over the slowest link in the ring plus the
    per-hop latencies of the ``2*(N-1)`` steps.

    With ``telemetry``, the total bytes on the wire — per-edge ring volume
    times the ``N`` ring edges — land on ``comm.all_reduce.bytes``.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    n = topology.num_workers
    if telemetry is not None and n > 1:
        telemetry.counter("comm.all_reduce.bytes").add(
            2.0 * (n - 1) * float(nbytes))
    if n == 1 or nbytes == 0:
        return 0.0
    # Any ring over multiple nodes traverses cross-node links.
    if topology.num_nodes > 1:
        slowest = topology.cross_link
    else:
        slowest = topology.intra_link
    volume = 2.0 * (n - 1) / n * nbytes
    return volume / slowest.bandwidth_bytes_per_s + \
        2.0 * (n - 1) * slowest.latency_s


def cross_node_bytes_all_to_all(byte_matrix: np.ndarray,
                                topology: ClusterTopology) -> float:
    """Bytes of an all-to-all that traverse node boundaries."""
    byte_matrix = np.asarray(byte_matrix, dtype=np.float64)
    total = 0.0
    n = topology.num_workers
    for src in range(n):
        for dst in range(n):
            if src != dst and topology.is_cross_node(src, dst):
                total += byte_matrix[src, dst]
    return total
