"""Communication substrate: messages, cost models, collectives."""

from .collective import (all_to_all_time, cross_node_bytes_all_to_all,
                         one_to_all_time, ring_all_reduce_time,
                         status_sync_time)
from .compression import (FP16, INT4, INT8, SCHEMES, CompressionScheme,
                          apply_scheme, dequantize_absmax, expected_relative_error,
                          quantization_error, quantize_absmax, roundtrip)
from .cost import CommCostModel
from .message import (BACKWARD_KINDS, FORWARD_KINDS, MASTER, Message,
                      MessageKind)

__all__ = [
    "Message", "MessageKind", "MASTER", "FORWARD_KINDS", "BACKWARD_KINDS",
    "CommCostModel",
    "CompressionScheme", "FP16", "INT8", "INT4", "SCHEMES",
    "quantize_absmax", "dequantize_absmax", "roundtrip",
    "quantization_error", "expected_relative_error", "apply_scheme",
    "one_to_all_time", "all_to_all_time", "status_sync_time",
    "ring_all_reduce_time", "cross_node_bytes_all_to_all",
]
