"""The paper's communication cost model (Eq. (5)–(7)).

All quantities derive from three inputs: the model's per-token feature bytes
(``b * H / 8``), per-block token counts ``K[n, l]``, and the master-worker
bandwidths ``B_n``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.topology import ClusterTopology
from ..models.config import MoEModelConfig


class CommCostModel:
    """Closed-form communication times and byte counts for one cluster+model."""

    def __init__(self, config: MoEModelConfig, topology: ClusterTopology):
        self.config = config
        self.topology = topology
        self.token_bytes = config.token_feature_nbytes()

    # ------------------------------------------------------------------ #
    # Eq. (5): single worker, single block
    # ------------------------------------------------------------------ #
    def block_bytes(self, tokens: float) -> float:
        """``D_{n,l} = b*H*K / 8`` — one direction, one block."""
        return self.token_bytes * tokens

    def block_round_trip_time(self, worker: int, tokens: float) -> float:
        """Eq. (5): ``2 D / B_n`` plus two link latencies (send + receive)."""
        link = self.topology.master_link(worker)
        nbytes = self.block_bytes(tokens)
        if nbytes == 0:
            return 0.0
        return 2.0 * (link.latency_s + nbytes / link.bandwidth_bytes_per_s)

    # ------------------------------------------------------------------ #
    # Eq. (7): full step, master-worker pattern
    # ------------------------------------------------------------------ #
    def layer_comm_time(self, tokens_per_worker: np.ndarray) -> float:
        """Max over workers of the round-trip time for one block.

        ``tokens_per_worker`` is the ``K[n]`` vector for one layer.
        """
        times = [self.block_round_trip_time(worker, float(tokens))
                 for worker, tokens in enumerate(tokens_per_worker)]
        return max(times)

    def step_comm_time(self, tokens_matrix: np.ndarray,
                       passes: int = 2) -> float:
        """Sum over blocks of per-block maxima, for ``passes`` round trips.

        ``tokens_matrix`` has shape ``(workers, layers)``.  ``passes=2``
        covers forward (features out/back) and backward (gradients out/back),
        i.e. the paper's four exchanges.
        """
        total = 0.0
        for layer in range(tokens_matrix.shape[1]):
            total += self.layer_comm_time(tokens_matrix[:, layer])
        return passes * total

    # ------------------------------------------------------------------ #
    # migration pricing (online re-placement)
    # ------------------------------------------------------------------ #
    def migration_time(self, incoming_bytes: np.ndarray) -> float:
        """Seconds to land per-worker migration payloads.

        ``incoming_bytes[n]`` is what worker ``n`` must receive (e.g.
        :meth:`repro.placement.replan.MigrationPlan.bytes_per_worker`).
        The master holds the checkpoint, each worker's transfer is
        serialized on its own master link, and workers receive in
        parallel — so the wall time is the slowest link's transfer time.
        """
        incoming = np.asarray(incoming_bytes, dtype=np.float64)
        if np.any(incoming < 0):
            raise ValueError("incoming_bytes must be non-negative")
        worst = 0.0
        for worker in range(min(len(incoming), self.topology.num_workers)):
            if incoming[worker] <= 0:
                continue
            link = self.topology.master_link(worker)
            worst = max(worst, link.transfer_time(float(incoming[worker])))
        return worst

    # ------------------------------------------------------------------ #
    # byte accounting (Fig. 5's external traffic)
    # ------------------------------------------------------------------ #
    def step_bytes_per_worker(self, tokens_matrix: np.ndarray,
                              transfers: int = 4) -> np.ndarray:
        """Bytes exchanged with each worker in one step (all transfers)."""
        per_direction = self.token_bytes * tokens_matrix.sum(axis=1)
        return transfers * per_direction

    def cross_node_bytes(self, tokens_matrix: np.ndarray,
                         transfers: int = 4) -> float:
        """Total bytes that cross node boundaries in one step."""
        per_worker = self.step_bytes_per_worker(tokens_matrix, transfers)
        total = 0.0
        for worker in range(self.topology.num_workers):
            if self.topology.is_cross_node_from_master(worker):
                total += per_worker[worker]
        return float(total)

    def external_traffic_per_node(self, tokens_matrix: np.ndarray,
                                  transfers: int = 4) -> float:
        """Average cross-node bytes per node — the Fig. 5 y-axis."""
        return self.cross_node_bytes(tokens_matrix, transfers) / \
            self.topology.num_nodes
