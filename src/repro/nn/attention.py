"""Multi-head self-attention with causal masking.

This is the attention block of the backbone transformer.  It is deliberately
simple (no KV caching, no rotary embeddings beyond a learned positional
embedding in the model) because the reproduction's claims concern the MoE
routing layers, not attention throughput.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .functional import softmax
from .layers import Linear, Module
from .tensor import Tensor


def causal_mask(seq_len: int) -> np.ndarray:
    """Return an additive causal mask of shape ``(seq_len, seq_len)``.

    Entries above the diagonal are ``-inf`` surrogates (-1e9) so softmax
    assigns them ~zero weight.
    """
    mask = np.triu(np.ones((seq_len, seq_len)), k=1) * -1e9
    return mask


class MultiHeadAttention(Module):
    """Standard scaled-dot-product multi-head self-attention.

    Parameters
    ----------
    dim:
        Model feature size (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    causal:
        If True (default), apply a causal mask for autoregressive LM training.
    """

    def __init__(self, dim: int, num_heads: int, causal: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.o_proj = Linear(dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Apply self-attention to ``x`` of shape ``(batch, seq, dim)``."""
        batch, seq, _ = x.shape
        heads, hd = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            # (b, s, d) -> (b, h, s, hd)
            return t.reshape(batch, seq, heads, hd).transpose(0, 2, 1, 3)

        q = split_heads(self.q_proj(x))
        k = split_heads(self.k_proj(x))
        v = split_heads(self.v_proj(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))
        if self.causal:
            scores = scores + causal_mask(seq)
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (b, h, s, hd)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(merged)
