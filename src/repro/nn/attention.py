"""Multi-head self-attention with causal masking and KV-cached decoding.

This is the attention block of the backbone transformer.  Training and
full-sequence inference go through :meth:`MultiHeadAttention.forward`;
the serving path decodes incrementally through a :class:`KVCache` and
:meth:`MultiHeadAttention.forward_incremental`, which projects only the
*new* positions and attends against the cached key/value prefix — the
O(T) half of the prefill/decode split (`docs/ARCHITECTURE.md` § Serving).
Continuous batching decodes many requests of different lengths through
one shared cache via per-slot cursors and
:meth:`MultiHeadAttention.forward_slots` (ragged, length-aware masking).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .functional import softmax
from .layers import Linear, Module
from .tensor import Tensor, get_default_dtype, is_grad_enabled


def causal_mask(seq_len: int) -> np.ndarray:
    """Return an additive causal mask of shape ``(seq_len, seq_len)``.

    Entries above the diagonal are ``-inf`` surrogates (-1e9) so softmax
    assigns them ~zero weight.
    """
    mask = np.triu(np.ones((seq_len, seq_len)), k=1) * -1e9
    return mask


def incremental_causal_mask(seq_len: int, total_len: int,
                            offset: int) -> np.ndarray:
    """Additive causal mask for a query block starting at ``offset``.

    Shape ``(seq_len, total_len)``: query row ``i`` (absolute position
    ``offset + i``) may attend key columns ``j <= offset + i``.  With
    ``offset == 0`` and ``total_len == seq_len`` this is exactly
    :func:`causal_mask`, so a prefill pass reproduces the full forward's
    masking bit for bit.
    """
    cols = np.arange(total_len)
    rows = offset + np.arange(seq_len)[:, None]
    return np.where(cols > rows, -1e9, 0.0)


class KVCache:
    """Preallocated key/value buffers for one attention layer.

    Holds ``(batch, max_len, num_heads, head_dim)`` buffers plus one fill
    cursor *per batch row* (:attr:`positions`).  Two write paths cover the
    two serving runtimes:

    * **uniform** — :meth:`append` advances every row together and returns
      views of the filled prefix; this is the single-sequence
      prefill/decode split (``LiveDecodeEngine``), where all rows hold the
      same number of positions.  :attr:`position` exposes the shared
      cursor and raises if the rows have diverged.
    * **per-slot** — :meth:`append_rows` writes a subset of rows at their
      own cursors; this is the continuous-batching slot pool
      (``ContinuousBatchingEngine``), where each row is an independent
      request at its own sequence length.  :meth:`reset` accepts a slot
      list so an evicted row can be handed to the next request without
      touching the others.

    No per-step reallocation, no concatenation.  One cache per transformer
    block; allocate the full set with
    :meth:`repro.models.MoETransformer.new_kv_caches`.
    """

    def __init__(self, batch: int, max_len: int, num_heads: int,
                 head_dim: int, dtype=None):
        if batch < 1 or max_len < 1:
            raise ValueError(f"batch ({batch}) and max_len ({max_len}) "
                             f"must be positive")
        dtype = np.dtype(dtype) if dtype is not None else get_default_dtype()
        self.keys = np.zeros((batch, max_len, num_heads, head_dim),
                             dtype=dtype)
        self.values = np.zeros_like(self.keys)
        self._positions = np.zeros(batch, dtype=np.int64)

    @property
    def batch(self) -> int:
        """Batch size the buffers were allocated for."""
        return self.keys.shape[0]

    @property
    def max_len(self) -> int:
        """Maximum number of positions the cache can hold."""
        return self.keys.shape[1]

    @property
    def position(self) -> int:
        """The shared fill cursor (uniform path).

        Raises ``ValueError`` when rows carry different cursors — callers
        on the ragged path must read :attr:`positions` instead.
        """
        first = int(self._positions[0])
        if np.any(self._positions != first):
            raise ValueError("KV cache rows are ragged (per-slot cursors "
                             "differ); read positions, not position")
        return first

    @property
    def positions(self) -> np.ndarray:
        """Per-row fill cursors, shape ``(batch,)`` (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    def reset(self, slots=None) -> None:
        """Rewind fill cursors (buffer contents are overwritten lazily).

        With ``slots`` (an index array) only those rows rewind — the slot
        pool does this when a finished request's row is re-issued to the
        next occupant; all other rows keep decoding undisturbed.
        """
        if slots is None:
            self._positions[:] = 0
        else:
            self._positions[np.asarray(slots, dtype=np.int64)] = 0

    def append(self, keys: np.ndarray, values: np.ndarray):
        """Write new positions' keys/values; return the filled prefix views.

        ``keys``/``values`` are ``(batch, seq, num_heads, head_dim)``.
        Returns ``(k, v)`` views of shape ``(batch, position, heads, hd)``
        covering everything appended so far (cursor already advanced).
        Uniform path: every row advances together.
        """
        expected = (self.batch, keys.shape[1]) + self.keys.shape[2:]
        if keys.shape != expected or values.shape != expected:
            raise ValueError(f"expected key/value shape {expected}, got "
                             f"{keys.shape} / {values.shape}")
        seq = keys.shape[1]
        position = self.position
        if position + seq > self.max_len:
            raise ValueError(f"KV cache overflow: {position} + {seq} "
                             f"exceeds max_len {self.max_len}")
        self.keys[:, position:position + seq] = keys
        self.values[:, position:position + seq] = values
        self._positions[:] = position + seq
        return (self.keys[:, :position + seq], self.values[:, :position + seq])

    def append_rows(self, slots: np.ndarray, keys: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        """Write ``keys``/``values`` into ``slots`` at their own cursors.

        ``slots`` is a 1-D array of distinct row indices; ``keys``/
        ``values`` are ``(len(slots), seq, num_heads, head_dim)``.  Each
        row's block lands at that row's cursor, and the cursors advance by
        ``seq``.  Returns the cursors *before* the append (the absolute
        offset of each row's new block) — the ragged attention path needs
        them for its length-aware mask.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size == 0:
            raise ValueError(f"slots must be a non-empty 1-D index array, "
                             f"got shape {slots.shape}")
        if np.unique(slots).size != slots.size:
            raise ValueError("slots must be distinct")
        expected = (slots.size, keys.shape[1]) + self.keys.shape[2:]
        if keys.shape != expected or values.shape != expected:
            raise ValueError(f"expected key/value shape {expected}, got "
                             f"{keys.shape} / {values.shape}")
        seq = keys.shape[1]
        offsets = self._positions[slots].copy()
        if np.any(offsets + seq > self.max_len):
            worst = int(slots[int(np.argmax(offsets))])
            raise ValueError(f"KV cache overflow on slot {worst}: "
                             f"{int(offsets.max())} + {seq} exceeds max_len "
                             f"{self.max_len}")
        index = offsets[:, None] + np.arange(seq)
        self.keys[slots[:, None], index] = keys
        self.values[slots[:, None], index] = values
        self._positions[slots] = offsets + seq
        return offsets


class MultiHeadAttention(Module):
    """Standard scaled-dot-product multi-head self-attention.

    Parameters
    ----------
    dim:
        Model feature size (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    causal:
        If True (default), apply a causal mask for autoregressive LM training.
    """

    def __init__(self, dim: int, num_heads: int, causal: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.o_proj = Linear(dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Apply self-attention to ``x`` of shape ``(batch, seq, dim)``."""
        batch, seq, _ = x.shape
        heads, hd = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            # (b, s, d) -> (b, h, s, hd)
            return t.reshape(batch, seq, heads, hd).transpose(0, 2, 1, 3)

        q = split_heads(self.q_proj(x))
        k = split_heads(self.k_proj(x))
        v = split_heads(self.v_proj(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))
        if self.causal:
            scores = scores + causal_mask(seq)
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (b, h, s, hd)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(merged)

    def forward_incremental(self, x: Tensor, cache: KVCache) -> Tensor:
        """Attend the new positions in ``x`` against the cached prefix.

        ``x`` is ``(batch, seq, dim)`` holding only positions
        ``[cache.position, cache.position + seq)`` — the whole prompt for
        the prefill pass, a single token per decode step.  Keys and values
        of the new positions are appended to ``cache``; queries attend over
        the full filled prefix.  Inference-only: the cache holds raw
        arrays outside the autograd tape, so this path requires gradients
        to be disabled (run under :class:`repro.nn.no_grad`).
        """
        if is_grad_enabled():
            raise RuntimeError("forward_incremental is inference-only; "
                               "wrap the decode loop in no_grad()")
        batch, seq, _ = x.shape
        heads, hd = self.num_heads, self.head_dim

        q = self.q_proj(x).data.reshape(batch, seq, heads, hd)
        k_new = self.k_proj(x).data.reshape(batch, seq, heads, hd)
        v_new = self.v_proj(x).data.reshape(batch, seq, heads, hd)
        offset = cache.position
        k, v = cache.append(k_new, v_new)

        # (b, h, seq, total) scores against every cached position.
        scores = q.transpose(0, 2, 1, 3) @ k.transpose(0, 2, 3, 1)
        scores *= 1.0 / np.sqrt(hd)
        if self.causal and seq > 1:
            # A single decode token sits after every cached key — no masking
            # needed; a multi-token (prefill) block is masked within itself.
            scores = scores + incremental_causal_mask(seq, cache.position,
                                                      offset)
        # Raw stable softmax, same formula as functional.softmax.
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)

        context = scores @ v.transpose(0, 2, 1, 3)  # (b, h, seq, hd)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(Tensor(merged))

    def forward_slots(self, x: Tensor, cache: KVCache,
                      slots: np.ndarray) -> Tensor:
        """Ragged attention for a subset of cache rows at per-slot cursors.

        ``x`` is ``(len(slots), seq, dim)``: row ``i`` holds the next
        ``seq`` positions of the request occupying cache slot
        ``slots[i]``, starting at that slot's own cursor.  This is the
        continuous-batching decode step (one token per active request,
        cursors all different) and the batched prefill of a group of
        newly admitted requests (cursors all zero).

        Keys are gathered up to the longest row and a length-aware causal
        mask hides both future positions and every column past a row's
        cursor, so a slot never attends the previous occupant's stale
        entries.  The mask's ``-1e9`` surrogate underflows ``exp`` to an
        exact ``0.0``, and no masking is applied at all when every column
        is valid — so with uniform cursors this computes bit for bit what
        :meth:`forward_incremental` computes, the anchor for the
        single-request equivalence gate in ``repro.serving.scheduler``.
        Inference-only, like the rest of the cached path.
        """
        if is_grad_enabled():
            raise RuntimeError("forward_slots is inference-only; "
                               "wrap the decode loop in no_grad()")
        rows, seq, _ = x.shape
        heads, hd = self.num_heads, self.head_dim

        q = self.q_proj(x).data.reshape(rows, seq, heads, hd)
        k_new = self.k_proj(x).data.reshape(rows, seq, heads, hd)
        v_new = self.v_proj(x).data.reshape(rows, seq, heads, hd)
        offsets = cache.append_rows(slots, k_new, v_new)

        total = int(offsets.max()) + seq
        k = cache.keys[slots, :total]      # (rows, total, heads, hd) gather
        v = cache.values[slots, :total]

        scores = q.transpose(0, 2, 1, 3) @ k.transpose(0, 2, 3, 1)
        scores *= 1.0 / np.sqrt(hd)
        # Row i's query at block index j sits at absolute position
        # offsets[i] + j; causal attention admits key columns <= that, and
        # a non-causal layer still must stop at the row's filled length.
        steps = (np.arange(seq) if self.causal
                 else np.full(seq, seq - 1, dtype=np.int64))
        limit = offsets[:, None] + steps[None, :]          # (rows, seq)
        invalid = np.arange(total)[None, None, :] > limit[:, :, None]
        if invalid.any():
            scores = scores + \
                np.where(invalid, -1e9, 0.0)[:, None, :, :]
        # Raw stable softmax, same formula as functional.softmax.
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)

        context = scores @ v.transpose(0, 2, 1, 3)  # (rows, h, seq, hd)
        merged = context.transpose(0, 2, 1, 3).reshape(rows, seq, self.dim)
        return self.o_proj(Tensor(merged))
