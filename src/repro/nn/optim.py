"""Optimizers: SGD (used by the Theorem-1 analysis) and AdamW (used for LoRA
fine-tuning, matching the paper's hyperparameters: lr 3e-5, betas (0.8, 0.999),
eps 1e-8, weight decay 3e-7).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one update."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent.

    Theorem 1 of the paper assumes ``w_t = w_{t-1} - mu * grad``; this class
    with ``momentum=0`` implements exactly that update.
    """

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class AdamW(Optimizer):
    """AdamW with decoupled weight decay.

    Defaults follow the paper's fine-tuning settings (Section V-A).
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 3e-5,
                 betas: tuple = (0.8, 0.999), eps: float = 1e-8,
                 weight_decay: float = 3e-7):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update."""
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


class GradClipper:
    """Global-norm gradient clipping helper."""

    def __init__(self, max_norm: float):
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def clip(self, params: Iterable[Parameter]) -> float:
        """Scale gradients in place; return the pre-clip global norm."""
        params = [p for p in params if p.grad is not None]
        total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
        if total > self.max_norm and total > 0:
            scale = self.max_norm / total
            for p in params:
                p.grad = p.grad * scale
        return total
