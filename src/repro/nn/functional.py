"""Stateless differentiable functions built on :class:`repro.nn.tensor.Tensor`.

These cover what an MoE transformer needs: numerically stable softmax /
log-softmax, cross-entropy over token logits, embedding lookup, top-k
selection (used by the MoE gate), and a handful of helpers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, _as_tensor, _segment_sum_rows


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        # d softmax = s * (g - sum(g * s))
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - dot),)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(g: np.ndarray):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Shape ``(..., vocab)``.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions are excluded from the mean (e.g. padding).
    """
    logits = _as_tensor(logits)
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1).astype(np.int64)

    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones(flat_targets.shape, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise ValueError("cross_entropy received no valid targets")

    logp = log_softmax(flat_logits, axis=-1)
    rows = np.arange(flat_targets.shape[0])
    safe_targets = np.where(mask, flat_targets, 0)
    picked_data = logp.data[rows, safe_targets]
    loss_value = -(picked_data * mask).sum() / count

    def backward(g: np.ndarray):
        grad = np.zeros_like(logp.data)
        grad[rows, safe_targets] = -(mask.astype(logp.data.dtype)) / count
        return (grad * g,)

    return Tensor._make(np.asarray(loss_value), (logp,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by integer ``indices`` (differentiable)."""
    weight = _as_tensor(weight)
    indices = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
    indices = indices.astype(np.int64)
    out_data = weight.data[indices]

    def backward(g: np.ndarray):
        grad = np.zeros_like(weight.data)
        np.add.at(grad, indices.reshape(-1), g.reshape(-1, weight.shape[-1]))
        return (grad,)

    return Tensor._make(out_data, (weight,), backward)


def top_k(x: np.ndarray, k: int, axis: int = -1) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(values, indices)`` of the ``k`` largest entries along ``axis``.

    Indices are ordered by descending value, matching ``torch.topk``.  This is
    a non-differentiable helper used by the MoE gate's routing decision (the
    gradient flows through the softmax weights, not through the argmax).
    """
    x = x.data if isinstance(x, Tensor) else np.asarray(x)
    if k <= 0 or k > x.shape[axis]:
        raise ValueError(f"k={k} out of range for axis of size {x.shape[axis]}")
    part = np.argpartition(-x, k - 1, axis=axis)
    idx = np.take(part, np.arange(k), axis=axis)
    vals = np.take_along_axis(x, idx, axis=axis)
    order = np.argsort(-vals, axis=axis, kind="stable")
    idx = np.take_along_axis(idx, order, axis=axis)
    vals = np.take_along_axis(vals, order, axis=axis)
    return vals, idx


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer indices to a one-hot float array (non-differentiable)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = _as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    out_data = x.data * mask
    return Tensor._make(out_data, (x,), lambda g: (g * mask,))


def index_select(x: Tensor, row_ids: np.ndarray,
                 unique_rows: bool = False) -> Tensor:
    """Differentiable row gather ``x[row_ids]`` for 1-D integer ``row_ids``.

    The backward pass scatter-adds through :func:`_segment_sum_rows` instead
    of the generic ``np.add.at`` fallback of ``Tensor.__getitem__`` — this is
    the fast path the fused MoE dispatch uses to hand each expert its token
    batch.  Pass ``unique_rows=True`` when the caller guarantees ``row_ids``
    are pairwise distinct (one expert's segment never repeats a token, since
    the gate's top-k choices are distinct): the backward then degenerates to
    an assignment scatter, skipping the segment reduction entirely.
    """
    x = _as_tensor(x)
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if row_ids.ndim != 1:
        raise ValueError("index_select expects 1-D row ids")
    out_data = x.data[row_ids]
    num_rows = x.data.shape[0]

    def backward(g: np.ndarray):
        if unique_rows:
            grad = np.zeros((num_rows,) + g.shape[1:], dtype=g.dtype)
            grad[row_ids] = g
            return (grad,)
        return (_segment_sum_rows(g, row_ids, num_rows),)

    return Tensor._make(out_data, (x,), backward)


def take_along_rows(x: Tensor, col_ids: np.ndarray) -> Tensor:
    """Differentiable per-row column gather ``x[i, col_ids[i, j]]``.

    ``col_ids`` must hold distinct columns within each row (true for top-k
    selections), so the backward is a plain ``put_along_axis`` assignment —
    no atomic scatter-add needed.  This is the gate's hot path for picking
    the selected experts' scores out of the ``(tokens, num_experts)`` softmax.
    """
    x = _as_tensor(x)
    col_ids = np.asarray(col_ids, dtype=np.int64)
    if x.data.ndim != 2 or col_ids.ndim != 2:
        raise ValueError("take_along_rows expects 2-D input and 2-D col_ids")
    out_data = np.take_along_axis(x.data, col_ids, axis=1)

    def backward(g: np.ndarray):
        grad = np.zeros(x.data.shape, dtype=g.dtype)
        np.put_along_axis(grad, col_ids, g, axis=1)
        return (grad,)

    return Tensor._make(out_data, (x,), backward)


def scatter_rows(values: Tensor, row_ids: np.ndarray, num_rows: int) -> Tensor:
    """Scatter-add ``values`` (shape ``(n, d)``) into a zero matrix of shape
    ``(num_rows, d)`` at rows ``row_ids``.

    This is the token "combine" step of an MoE block: expert outputs computed
    on a token subset are added back at the tokens' original positions.
    Differentiable in ``values``.
    """
    values = _as_tensor(values)
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if row_ids.ndim != 1 or values.data.ndim != 2:
        raise ValueError("scatter_rows expects 1-D row_ids and 2-D values")
    if row_ids.shape[0] != values.data.shape[0]:
        raise ValueError("row_ids and values must agree on the first dimension")
    out_data = _segment_sum_rows(values.data, row_ids, num_rows)

    def backward(g: np.ndarray):
        return (g[row_ids],)

    return Tensor._make(out_data, (values,), backward)


def fused_swiglu(x: Tensor, w_gate: Tensor, w_up: Tensor,
                 w_down: Tensor) -> Tensor:
    """SwiGLU FFN ``(silu(x Wg^T) * (x Wu^T)) Wd^T`` as one autograd node.

    Functionally identical to chaining three ``Linear`` layers with ``silu``
    and ``*``, but the whole expert runs as a single graph node with a
    hand-written single-pass backward: no intermediate ``Tensor`` wrappers,
    no transpose nodes, and the weight-gradient GEMMs are skipped outright
    for frozen weights (gate-frozen fine-tuning, inference).  This is the
    per-expert kernel of the fused MoE dispatch hot loop.

    Weights use the ``Linear`` layout: ``w_gate``/``w_up`` are
    ``(ffn, hidden)``, ``w_down`` is ``(hidden, ffn)``.
    """
    xd = x.data
    g = xd @ w_gate.data.T
    u = xd @ w_up.data.T
    sig = 1.0 / (1.0 + np.exp(-g))
    s = g * sig
    h = s * u
    out_data = h @ w_down.data.T

    def backward(gy: np.ndarray):
        gh = gy @ w_down.data
        gu = gh * s
        # d silu(g)/dg = sig + g * sig * (1 - sig), same form as Tensor.silu,
        # built up in place to avoid three (n, ffn) temporaries.
        dsilu = 1.0 - sig
        dsilu *= sig
        dsilu *= g
        dsilu += sig
        gg = gh * u
        gg *= dsilu
        gx = None
        if x.requires_grad:
            gx = gg @ w_gate.data
            gx += gu @ w_up.data
        gw_gate = gg.T @ xd if w_gate.requires_grad else None
        gw_up = gu.T @ xd if w_up.requires_grad else None
        gw_down = gy.T @ h if w_down.requires_grad else None
        return (gx, gw_gate, gw_up, gw_down)

    return Tensor._make(out_data, (x, w_gate, w_up, w_down), backward)


def swiglu_infer(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray,
                 w_down: np.ndarray) -> np.ndarray:
    """Raw-ndarray SwiGLU ``(silu(x Wg^T) * (x Wu^T)) Wd^T``, inference only.

    The same arithmetic as :func:`fused_swiglu`'s forward, in the same
    operation order, but on plain arrays: no autograd node, no ``Tensor``
    wrappers.  This is the per-expert kernel of the single-token decode
    fast path (``seq_len == 1`` MoE dispatch), where graph bookkeeping
    would dominate the tiny GEMMs.  Weights use the ``Linear`` layout:
    ``w_gate``/``w_up`` are ``(ffn, hidden)``, ``w_down`` is ``(hidden, ffn)``.
    """
    g = x @ w_gate.T
    u = x @ w_up.T
    sig = 1.0 / (1.0 + np.exp(-g))
    s = g * sig
    h = s * u
    return h @ w_down.T


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GELU activation."""
    x = _as_tensor(x)
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(g: np.ndarray):
        dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x.data ** 2)
        return (g * (0.5 * (1.0 + t) + 0.5 * x.data * dt),)

    return Tensor._make(out_data, (x,), backward)
