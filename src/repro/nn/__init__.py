"""Numpy-backed autograd substrate.

Public surface: :class:`Tensor`, layer modules, optimizers and the functional
namespace.  This replaces PyTorch for the reproduction (see DESIGN.md §1).
"""

from . import functional
from .attention import (KVCache, MultiHeadAttention, causal_mask,
                        incremental_causal_mask)
from .layers import (Dropout, Embedding, LayerNorm, Linear, Module, Parameter,
                     RMSNorm, Sequential)
from .optim import SGD, AdamW, GradClipper, Optimizer
from .quant import (QuantizationReport, QuantizedLinear, QuantizedTensor,
                    dequantize, quantize_expert_weights, quantize_tensor,
                    quantized_matmul)
from .schedule import ConstantLR, LRScheduler, StepDecayLR, WarmupCosineLR
from .serialize import (checkpoint_nbytes, load_checkpoint,
                        load_quantized_state, save_checkpoint,
                        save_quantized_state)
from .tensor import (Tensor, concatenate, default_dtype, get_default_dtype,
                     is_grad_enabled, no_grad, ones, set_default_dtype, stack,
                     tensor, where, zeros)

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "concatenate", "stack", "where",
    "no_grad", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype", "default_dtype",
    "Module", "Parameter", "Linear", "Embedding", "LayerNorm", "RMSNorm",
    "Dropout", "Sequential", "MultiHeadAttention", "causal_mask",
    "KVCache", "incremental_causal_mask",
    "Optimizer", "SGD", "AdamW", "GradClipper",
    "LRScheduler", "ConstantLR", "WarmupCosineLR", "StepDecayLR",
    "save_checkpoint", "load_checkpoint", "checkpoint_nbytes",
    "save_quantized_state", "load_quantized_state",
    "QuantizedTensor", "QuantizedLinear", "QuantizationReport",
    "quantize_tensor", "quantized_matmul", "dequantize",
    "quantize_expert_weights",
    "functional",
]
