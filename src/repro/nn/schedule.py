"""Learning-rate schedules.

Standard fine-tuning infrastructure: warmup, cosine decay, and step decay,
wrapping any :class:`~repro.nn.optim.Optimizer` whose ``lr`` attribute the
scheduler rewrites before each step.
"""

from __future__ import annotations

import math
from typing import Optional

from .optim import Optimizer


class LRScheduler:
    """Base scheduler: computes a learning rate per step index."""

    def __init__(self, optimizer: Optimizer, base_lr: Optional[float] = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self._step = 0

    def lr_at(self, step: int) -> float:  # pragma: no cover - interface
        """Learning rate for a step index."""
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        """The optimizer's current learning rate."""
        return self.optimizer.lr

    def step(self) -> float:
        """Advance one step; sets and returns the new learning rate."""
        lr = self.lr_at(self._step)
        self.optimizer.lr = lr
        self._step += 1
        return lr


class ConstantLR(LRScheduler):
    """No schedule — the paper's fine-tuning setup."""

    def lr_at(self, step: int) -> float:
        """Learning rate for a step index."""
        return self.base_lr


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 warmup_steps: int = 0, min_lr: float = 0.0,
                 base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if total_steps < 1:
            raise ValueError("total_steps must be positive")
        if not 0 <= warmup_steps < total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps)")
        if min_lr < 0 or min_lr > self.base_lr:
            raise ValueError("min_lr must be in [0, base_lr]")
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        """Learning rate for a step index."""
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / \
            max(self.total_steps - self.warmup_steps, 1)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecayLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1, base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if step_size < 1:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        """Learning rate for a step index."""
        return self.base_lr * self.gamma ** (step // self.step_size)
