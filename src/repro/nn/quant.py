"""Int8 weight quantization: per-channel codes + scales, GEMM path, modules.

This is the *weight* counterpart of :mod:`repro.comm.compression` (which
quantizes activations in flight): expert FFN matrices are stored and shipped
as signed int8 codes with one float scale per output channel, cutting both
the bytes a serving-path expert fetch moves through the bandwidth model and
the bytes a shared-memory weight buffer or checkpoint occupies — 4x vs
float32, 2x vs the paper's fp16 accounting.

Two consumption patterns are supported:

**dequant-on-load**
    :func:`dequantize` / :meth:`QuantizedTensor.dequantize` reconstruct a
    dense float matrix once (when an expert is loaded into a worker or an
    engine) and compute proceeds at full speed with the usual kernels.  The
    parallel executor's int8 shared-memory format and
    ``LiveDecodeEngine(weight_format="int8")`` use this.

**quantized GEMM**
    :func:`quantized_matmul` contracts against the raw codes and applies the
    per-channel scales to the *output* columns, so the dense weight matrix is
    never materialized.  :class:`QuantizedLinear` wraps this as an
    inference-only drop-in for :class:`~repro.nn.layers.Linear` when resident
    memory, not speed, is the constraint.

Quantization is symmetric absmax per output channel: for a ``(out, in)``
weight the scale of row ``i`` is ``max(|W[i, :]|) / 127``, so the
reconstruction error of every element in that row is at most half a scale
step (the bound ``tests/nn/test_quant.py`` pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .layers import Linear, Module
from .tensor import Tensor, is_grad_enabled

INT8_QMAX = 127


def quantize_tensor(weight: np.ndarray,
                    dtype=np.float64) -> "QuantizedTensor":
    """Per-output-channel symmetric absmax int8 quantization.

    ``weight`` is a 2-D ``(out, in)`` matrix; each row gets one scale
    ``absmax / 127`` (rows of zeros get scale 1.0 so dequantization is
    well-defined).  ``dtype`` selects the scale (and dequantization)
    precision.
    """
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got {weight.shape}")
    absmax = np.abs(weight).max(axis=1)
    scales = np.where(absmax > 0, absmax / INT8_QMAX, 1.0).astype(dtype)
    codes = np.clip(np.round(weight / scales[:, None]),
                    -INT8_QMAX, INT8_QMAX).astype(np.int8)
    return QuantizedTensor(codes=codes, scales=scales)


def dequantize(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Reconstruct the dense matrix ``codes * scales[:, None]``."""
    return codes.astype(scales.dtype) * scales[:, None]


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8-quantized 2-D weight: ``codes`` ``(out, in)`` + per-row scales.

    The pair round-trips through flat array dicts (:meth:`to_state` /
    :meth:`from_state`), which is what
    :func:`repro.nn.serialize.save_quantized_state` writes to ``.npz``.
    """

    codes: np.ndarray
    scales: np.ndarray

    def __post_init__(self) -> None:
        if self.codes.dtype != np.int8:
            raise ValueError(f"codes must be int8, got {self.codes.dtype}")
        if self.codes.ndim != 2 or self.scales.ndim != 1:
            raise ValueError("expected 2-D codes and 1-D scales")
        if self.codes.shape[0] != self.scales.shape[0]:
            raise ValueError(f"scale count {self.scales.shape[0]} does not "
                             f"match output channels {self.codes.shape[0]}")

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the dense matrix this represents."""
        return self.codes.shape

    @property
    def nbytes(self) -> int:
        """Stored bytes (codes + scales)."""
        return int(self.codes.nbytes + self.scales.nbytes)

    def dequantize(self) -> np.ndarray:
        """Dense reconstruction at the scales' dtype."""
        return dequantize(self.codes, self.scales)

    def max_channel_error(self, reference: np.ndarray) -> np.ndarray:
        """Per-channel max absolute reconstruction error vs ``reference``."""
        return np.abs(self.dequantize() - np.asarray(reference)).max(axis=1)

    def to_state(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flatten into a ``{name: array}`` dict (npz-serializable)."""
        return {f"{prefix}codes": self.codes, f"{prefix}scales": self.scales}

    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray],
                   prefix: str = "") -> "QuantizedTensor":
        """Inverse of :meth:`to_state`."""
        return cls(codes=np.asarray(state[f"{prefix}codes"], dtype=np.int8),
                   scales=np.asarray(state[f"{prefix}scales"]))


def quantized_matmul(x: np.ndarray, qt: QuantizedTensor) -> np.ndarray:
    """``x @ W^T`` against int8 codes without materializing ``W``.

    The contraction runs in the code domain (codes cast to ``x``'s dtype so
    the GEMM stays a BLAS call) and the per-channel scales are applied to
    the output columns — each output column ``j`` is
    ``sum_k x[:, k] * codes[j, k] * scales[j]``, identical to dequantizing
    first up to one extra rounding per element.
    """
    x = np.asarray(x)
    return (x @ qt.codes.T.astype(x.dtype)) * qt.scales.astype(x.dtype)


class QuantizedLinear(Module):
    """Inference-only bias-free linear layer backed by int8 codes.

    A drop-in for a frozen :class:`~repro.nn.layers.Linear` on paths that
    never train: the resident weight is the int8 code matrix plus per-channel
    scales (~4x smaller than float32), and the forward runs through
    :func:`quantized_matmul`.  Calling it under an active gradient tape
    raises — quantized weights have no meaningful gradient.
    """

    def __init__(self, quantized: QuantizedTensor):
        super().__init__()
        self.quantized = quantized
        self.out_features, self.in_features = quantized.shape
        self.bias = None

    @classmethod
    def from_linear(cls, linear: Linear) -> "QuantizedLinear":
        """Quantize a bias-free :class:`Linear`'s weight."""
        if linear.bias is not None:
            raise ValueError("QuantizedLinear only supports bias-free layers")
        return cls(quantize_tensor(linear.weight.data,
                                   dtype=linear.weight.data.dtype))

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation (inference only)."""
        if is_grad_enabled():
            raise RuntimeError("QuantizedLinear is inference-only; wrap the "
                               "forward in no_grad() or use eval paths")
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        return Tensor(quantized_matmul(data, self.quantized))

    def nbytes(self) -> int:
        """Resident bytes of the quantized weight."""
        return self.quantized.nbytes


@dataclass
class QuantizationReport:
    """What quantizing a set of expert weights cost and saved."""

    num_matrices: int = 0
    dense_nbytes: int = 0
    quantized_nbytes: int = 0
    max_abs_error: float = 0.0
    max_rel_error: float = 0.0

    @property
    def compression_ratio(self) -> float:
        """Quantized bytes over dense bytes."""
        if self.dense_nbytes == 0:
            return 1.0
        return self.quantized_nbytes / self.dense_nbytes


def _expert_weight_params(expert):
    """The three projection weight Parameters of one (possibly LoRA) expert."""
    params = []
    for proj in (expert.w_gate, expert.w_up, expert.w_down):
        base = getattr(proj, "base", proj)
        params.append(base.weight)
    return params


def quantize_expert_weights(model,
                            report: Optional[QuantizationReport] = None
                            ) -> QuantizationReport:
    """Round-trip every expert FFN weight of ``model`` through int8, in place.

    This is the dequant-on-load serving path: the model afterwards computes
    with exactly the values an int8 checkpoint (or int8 shared-memory
    buffer) reconstructs, so decode outputs match an int8-format deployment
    bit for bit while all fast paths (fused dispatch, single-token decode)
    keep working.  Gate, attention and embedding weights are untouched.
    Returns a :class:`QuantizationReport` with the byte savings and the
    observed worst-case reconstruction error.
    """
    report = report or QuantizationReport()
    for _, _, expert in model.iter_experts():
        for param in _expert_weight_params(expert):
            dense = param.data
            qt = quantize_tensor(dense, dtype=dense.dtype)
            restored = qt.dequantize().astype(dense.dtype)
            err = float(np.abs(restored - dense).max())
            scale = float(np.abs(dense).max())
            report.num_matrices += 1
            report.dense_nbytes += int(dense.nbytes)
            report.quantized_nbytes += qt.nbytes
            report.max_abs_error = max(report.max_abs_error, err)
            if scale > 0:
                report.max_rel_error = max(report.max_rel_error, err / scale)
            param.data = restored
    return report
