"""Parameter (de)serialization for checkpoints.

Checkpoints are ``.npz`` archives mapping dotted parameter names to arrays.
This is what `repro.models.presets` uses to cache the "pre-trained" tiny
models so the locality experiments start from a converged router.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module


def save_checkpoint(module: Module, path: str) -> None:
    """Save every parameter of ``module`` to an ``.npz`` file at ``path``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # npz keys cannot contain '/', and dots are fine.
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {k: archive[k] for k in archive.files}
    module.load_state_dict(state, strict=strict)


def checkpoint_nbytes(module: Module) -> int:
    """Total parameter bytes of a module (used by the memory model tests)."""
    return int(sum(p.data.nbytes for p in module.parameters()))
