"""Parameter (de)serialization for checkpoints.

Checkpoints are ``.npz`` archives mapping dotted parameter names to arrays.
This is what `repro.models.presets` uses to cache the "pre-trained" tiny
models so the locality experiments start from a converged router.

Expert weights can additionally be stored in the int8 format of
:mod:`repro.nn.quant`: :func:`save_quantized_state` /
:func:`load_quantized_state` write and read ``{name: QuantizedTensor}``
maps as flat ``.npz`` archives (``<name>.codes`` int8 + ``<name>.scales``
float per entry), roughly 4x smaller than a float32 checkpoint of the same
matrices.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module
from .quant import QuantizedTensor

_QUANT_SUFFIXES = (".codes", ".scales")


def save_checkpoint(module: Module, path: str) -> None:
    """Save every parameter of ``module`` to an ``.npz`` file at ``path``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # npz keys cannot contain '/', and dots are fine.
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {k: archive[k] for k in archive.files}
    module.load_state_dict(state, strict=strict)


def checkpoint_nbytes(module: Module) -> int:
    """Total parameter bytes of a module (used by the memory model tests)."""
    return int(sum(p.data.nbytes for p in module.parameters()))


def save_quantized_state(quantized: Dict[str, QuantizedTensor],
                         path: str) -> None:
    """Save a ``{name: QuantizedTensor}`` map as one ``.npz`` archive.

    Each entry becomes two arrays, ``<name>.codes`` (int8) and
    ``<name>.scales`` (float) — the same dotted-name convention as
    :func:`save_checkpoint`, so quantized and dense checkpoints live side by
    side.
    """
    flat: Dict[str, np.ndarray] = {}
    for name, qt in quantized.items():
        flat.update(qt.to_state(prefix=f"{name}."))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **flat)


def load_quantized_state(path: str) -> Dict[str, QuantizedTensor]:
    """Inverse of :func:`save_quantized_state`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        flat = {k: archive[k] for k in archive.files}
    names = sorted({k[:-len(".codes")] for k in flat if k.endswith(".codes")})
    state: Dict[str, QuantizedTensor] = {}
    for name in names:
        state[name] = QuantizedTensor.from_state(flat, prefix=f"{name}.")
    stray = [k for k in flat
             if not any(k.endswith(s) for s in _QUANT_SUFFIXES)]
    if stray:
        raise ValueError(f"not a quantized checkpoint: stray keys {stray[:3]}")
    return state
