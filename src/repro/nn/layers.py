"""Neural-network modules: parameter containers and common layers.

The :class:`Module` base class provides recursive parameter discovery,
train/eval mode switching, and named-parameter iteration — the minimum
surface needed by the LoRA injector and the optimizers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import init as initializers
from .functional import dropout as dropout_fn
from .functional import embedding_lookup
from .tensor import Tensor, is_grad_enabled


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf by default.

    Floating data is cast to the module-level default dtype (see
    :func:`repro.nn.tensor.set_default_dtype`), so building a model under
    ``set_default_dtype(np.float32)`` yields a float32 model end to end.
    """

    def __init__(self, data, requires_grad: bool = True, name: str = ""):
        super().__init__(data, requires_grad=requires_grad, name=name)
        from .tensor import get_default_dtype
        target = get_default_dtype()
        if np.issubdtype(self.data.dtype, np.floating) and self.data.dtype != target:
            self.data = self.data.astype(target)


class Module:
    """Base class for all layers.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; these are discovered automatically for iteration, freezing and
    serialization.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # discovery
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}" if prefix else attr
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{key}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{key}", item

    def parameters(self) -> List[Parameter]:
        """All parameters, depth-first."""
        return [p for _, p in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        """Parameters with ``requires_grad`` set."""
        return [p for p in self.parameters() if p.requires_grad]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` including self (with empty name)."""
        yield prefix.rstrip("."), self
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}" if prefix else attr
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{name}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{name}.{key}.")

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters():
            p.grad = None

    def freeze(self) -> None:
        """Mark every parameter as non-trainable (used for the pre-trained base)."""
        for p in self.parameters():
            p.requires_grad = False

    def unfreeze(self) -> None:
        """Mark every parameter trainable."""
        for p in self.parameters():
            p.requires_grad = True

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        for _, module in self.named_modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total (or trainable-only) parameter count."""
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}: "
                                     f"{own[name].data.shape} vs {value.shape}")
                own[name].data = np.array(value, dtype=own[name].data.dtype)

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        """Run the forward computation."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Kaiming-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.kaiming_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        if not is_grad_enabled() and isinstance(x, Tensor):
            # Inference fast path: identical GEMM on the raw arrays, without
            # allocating the transpose/matmul/add graph nodes.  This is the
            # per-token hot loop of KV-cached decoding (4 projections per
            # attention layer + gate + head, every generated token).
            out_data = x.data @ self.weight.data.T
            if self.bias is not None:
                out_data += self.bias.data
            return Tensor(out_data)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(initializers.normal(rng, (num_embeddings, embedding_dim),
                                                    std=0.02))

    def forward(self, indices) -> Tensor:
        """Run the forward computation."""
        return embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class RMSNorm(Module):
    """Root-mean-square norm (the normalization Mistral-family models use)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        ms = (x * x).mean(axis=-1, keepdims=True)
        return x / (ms + self.eps).sqrt() * self.weight


class Dropout(Module):
    """Inverted dropout layer (active only in training mode)."""

    def __init__(self, p: float = 0.1, seed: int = 0):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        return dropout_fn(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        """Run the forward computation."""
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)
