"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic given a seed — a requirement for
reproducible routing traces.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def kaiming_uniform(rng: np.random.Generator, shape: Tuple[int, ...],
                    gain: float = np.sqrt(5.0)) -> np.ndarray:
    """Kaiming-uniform init matching ``torch.nn.Linear``'s default.

    ``shape`` is ``(fan_out, fan_in)`` for a weight matrix.
    """
    fan_in = shape[-1]
    bound = gain * np.sqrt(3.0 / ((1.0 + gain ** 2 / 3.0) * fan_in))
    # Simplify to the standard torch bound: sqrt(1 / fan_in) scaled uniform.
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    fan_in, fan_out = shape[-1], shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def normal(rng: np.random.Generator, shape: Tuple[int, ...],
           std: float = 0.02, mean: float = 0.0) -> np.ndarray:
    """Gaussian init (GPT-style embeddings use std=0.02)."""
    return rng.normal(mean, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """Zero-filled tensor/array of the given shape."""
    return np.zeros(shape)
