"""A numpy-backed tensor with reverse-mode automatic differentiation.

This module is the computational substrate of the reproduction.  The paper's
artifact runs on PyTorch; here we implement the minimal-but-real autograd
engine needed to actually *fine-tune* MoE transformers, so that gating
dynamics (expert locality, Theorem 1 stability) are measured on a live model
rather than assumed.

The design follows the classic tape-based approach: every differentiable
operation records its parents and a local backward closure on the result
tensor.  Calling :meth:`Tensor.backward` topologically sorts the graph and
accumulates gradients.

Only float64/float32 arrays are supported for differentiable tensors; integer
tensors may participate as non-differentiable inputs (e.g. embedding indices).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True

_default_dtype = np.dtype(np.float64)


def set_default_dtype(dtype) -> None:
    """Set the floating dtype new tensors and parameters are created with.

    ``float64`` (the default) keeps gradient checks tight; ``float32`` halves
    the memory bandwidth of every op in the training hot loop.  Only affects
    tensors built from non-array data (lists, scalars), the ``zeros``/``ones``
    factories, and :class:`~repro.nn.layers.Parameter` construction — arrays
    passed in explicitly keep their dtype.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    global _default_dtype
    _default_dtype = dtype


def get_default_dtype() -> np.dtype:
    """The current default floating dtype."""
    return _default_dtype


class default_dtype:
    """Context manager that temporarily switches the default floating dtype."""

    def __init__(self, dtype):
        self._dtype = dtype

    def __enter__(self) -> "default_dtype":
        self._prev = _default_dtype
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._prev)


class no_grad:
    """Context manager that disables gradient tape recording.

    Mirrors ``torch.no_grad``: inside the block, operations never record
    backward closures, which makes pure-inference passes (e.g. the locality
    profiling pass before fine-tuning) cheaper.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting may have added leading axes or stretched size-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out added leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were stretched from 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A multidimensional array with optional gradient tracking.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.  Floating data defaults to
        ``float64`` to keep gradient checks tight.
    requires_grad:
        If True, operations involving this tensor are recorded and
        :meth:`backward` will populate :attr:`grad`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        from_array = isinstance(data, np.ndarray)
        arr = np.asarray(data)
        if arr.dtype == np.float16:
            arr = arr.astype(np.float32)
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(_default_dtype)
        elif (not from_array and np.issubdtype(arr.dtype, np.floating)
              and arr.dtype != _default_dtype):
            arr = arr.astype(_default_dtype)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total element count."""
        return self.data.size

    @property
    def dtype(self):
        """Underlying numpy dtype."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transposed view (reverses all axes)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Deep copy of the data (same requires_grad)."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if self.grad is None:
            # Keep the grad's own precision (never silently downcast a
            # float64 grad onto a float32 leaf); the copy also materializes
            # broadcast views so the in-place accumulate below is safe.
            self.grad = grad.copy()
        else:
            target = np.result_type(self.grad.dtype, grad.dtype)
            if self.grad.dtype != target:
                self.grad = self.grad.astype(target)
            self.grad += grad

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar outputs; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order over the reachable graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            owned.discard(id(node))
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_to_parents(node_grad, grads, owned)

    def _push_to_parents(self, grad: np.ndarray, grads: dict[int, np.ndarray],
                         owned: Optional[set] = None) -> None:
        """Invoke the local backward closure, routing gradients to parents.

        ``owned`` tracks buffers this backward pass allocated itself: those
        accumulate in place, while first contributions (which may alias the
        upstream grad or a broadcast view) are only summed out-of-place once.
        """
        if owned is None:
            owned = set()
        contributions = self._backward(grad)
        if contributions is None:
            return
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            contribution = _unbroadcast(np.asarray(contribution), parent.data.shape)
            key = id(parent)
            if key not in grads:
                grads[key] = contribution
            elif key in owned and grads[key].dtype == np.result_type(
                    grads[key].dtype, contribution.dtype):
                grads[key] += contribution
            else:
                grads[key] = grads[key] + contribution
                owned.add(key)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data
        return Tensor._make(out_data, (self, other), lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data - other.data
        return Tensor._make(out_data, (self, other), lambda g: (g, -g))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data
        a, b = self, other
        return Tensor._make(out_data, (a, b), lambda g: (g * b.data, g * a.data))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data / other.data
        a, b = self, other
        return Tensor._make(
            out_data, (a, b),
            lambda g: (g / b.data, -g * a.data / (b.data * b.data)))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent
        a = self
        return Tensor._make(
            out_data, (a,),
            lambda g: (g * exponent * a.data ** (exponent - 1),))

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        a, b = self, other
        out_data = a.data @ b.data

        def backward(g: np.ndarray):
            if b.data.ndim == 1:
                # (..., n) @ (n,) -> (...)
                ga = np.expand_dims(g, -1) * b.data
                gb = np.tensordot(g, a.data, axes=(range(g.ndim), range(g.ndim)))
            elif a.data.ndim == 1:
                # (n,) @ (n, m) -> (m,)
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.outer(a.data, g)
            else:
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.swapaxes(a.data, -1, -2) @ g
            return ga, gb

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum reduction (autograd-aware)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        a = self

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, a.data.shape),)
            g_exp = g
            if not keepdims:
                g_exp = np.expand_dims(g, axis)
            return (np.broadcast_to(g_exp, a.data.shape),)

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean reduction (autograd-aware)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction (autograd-aware)."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        a = self

        def backward(g: np.ndarray):
            if axis is None:
                mask = (a.data == out_data)
                return (g * mask / mask.sum(),)
            g_exp, out_exp = g, out_data
            if not keepdims:
                g_exp = np.expand_dims(g, axis)
                out_exp = np.expand_dims(out_data, axis)
            mask = (a.data == out_exp)
            counts = mask.sum(axis=axis, keepdims=True)
            return (g_exp * mask / counts,)

        return Tensor._make(out_data, (a,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Variance reduction (autograd-aware)."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)
        return Tensor._make(out_data, (self,), lambda g: (g * out_data,))

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        a = self
        return Tensor._make(np.log(self.data), (a,), lambda g: (g / a.data,))

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)
        return Tensor._make(out_data, (self,), lambda g: (g * 0.5 / out_data,))

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)
        return Tensor._make(out_data, (self,), lambda g: (g * (1.0 - out_data * out_data),))

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(out_data, (self,),
                            lambda g: (g * out_data * (1.0 - out_data),))

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        a = self
        out_data = np.maximum(self.data, 0.0)
        return Tensor._make(out_data, (a,), lambda g: (g * (a.data > 0),))

    def silu(self) -> "Tensor":
        """SiLU / swish activation ``x * sigmoid(x)`` used by Mistral-family FFNs."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig
        a = self
        return Tensor._make(
            out_data, (a,),
            lambda g: (g * (sig + a.data * sig * (1.0 - sig)),))

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        a = self
        return Tensor._make(np.abs(self.data), (a,), lambda g: (g * np.sign(a.data),))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]`` (zero gradient outside)."""
        a = self
        out_data = np.clip(self.data, low, high)
        mask = (a.data >= low) & (a.data <= high)
        return Tensor._make(out_data, (a,), lambda g: (g * mask,))

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        """Reshaped view with gradient support."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        out_data = self.data.reshape(shape)
        return Tensor._make(out_data, (a,), lambda g: (g.reshape(a.data.shape),))

    def transpose(self, *axes) -> "Tensor":
        """Axis permutation with gradient support."""
        a = self
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)
        return Tensor._make(out_data, (a,), lambda g: (g.transpose(inverse),))

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Swap two axes with gradient support."""
        a = self
        out_data = np.swapaxes(self.data, axis1, axis2)
        return Tensor._make(out_data, (a,), lambda g: (np.swapaxes(g, axis1, axis2),))

    def __getitem__(self, index) -> "Tensor":
        a = self
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]

        def backward(g: np.ndarray):
            # 1-D non-negative integer row gathers (the common case in MoE
            # dispatch) scatter-add via the sorted segment reduce; negative
            # ids alias rows and need np.add.at's accumulation semantics.
            if (isinstance(index, np.ndarray) and index.ndim == 1
                    and index.size > 0
                    and np.issubdtype(index.dtype, np.integer)
                    and index.min() >= 0):
                return (_segment_sum_rows(g, index, a.data.shape[0]),)
            full = np.zeros_like(a.data, dtype=g.dtype)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(out_data, (a,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        """Insert a size-1 axis."""
        a = self
        out_data = np.expand_dims(self.data, axis)
        return Tensor._make(out_data, (a,), lambda g: (np.squeeze(g, axis=axis),))

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        """Remove size-1 axes."""
        a = self
        out_data = np.squeeze(self.data, axis=axis)
        return Tensor._make(out_data, (a,), lambda g: (g.reshape(a.data.shape),))


def _segment_sum_rows(values: np.ndarray, row_ids: np.ndarray,
                      num_rows: int) -> np.ndarray:
    """Sum rows of ``values`` sharing a row id into a ``(num_rows, ...)`` array.

    Equivalent to ``np.add.at(zeros, row_ids, values)`` but vectorized: sort
    the ids once (skipped when already sorted) and segment-reduce with
    ``np.add.reduceat``.  ``np.add.at`` falls back to a scalar inner loop and
    is the single slowest primitive in the MoE dispatch backward.
    """
    out = np.zeros((num_rows,) + values.shape[1:], dtype=values.dtype)
    n = row_ids.shape[0]
    if n == 0:
        return out
    if n > 1 and np.any(row_ids[1:] < row_ids[:-1]):
        order = np.argsort(row_ids, kind="stable")
        sorted_ids = row_ids[order]
        sorted_values = values[order]
    else:
        sorted_ids = row_ids
        sorted_values = values
    starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
    out[sorted_ids[starts]] = np.add.reduceat(sorted_values, starts, axis=0)
    return out


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Construct a :class:`Tensor` (convenience mirror of ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """Zero-filled tensor/array of the given shape (default floating dtype)."""
    return Tensor(np.zeros(shape, dtype=_default_dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """One-filled tensor of the given shape (default floating dtype)."""
    return Tensor(np.ones(shape, dtype=_default_dtype), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        slices = []
        for i in range(len(tensors)):
            idx = [slice(None)] * g.ndim
            idx[axis] = slice(offsets[i], offsets[i + 1])
            slices.append(g[tuple(idx)])
        return tuple(slices)

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        parts = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor._make(out_data, tensors, backward)


def where(condition: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select with gradients flowing to both branches."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    out_data = np.where(cond, a_t.data, b_t.data)
    return Tensor._make(out_data, (a_t, b_t),
                        lambda g: (g * cond, g * (~np.asarray(cond, dtype=bool))))
