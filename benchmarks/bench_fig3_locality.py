"""Fig. 3 — expert locality on a live fine-tuned MoE model.

Regenerates the paper's three Section III measurements on the TinyMistral-
topology model (12 blocks x 6 experts, top-2) fine-tuned on the synthetic
Tiny-Shakespeare corpus:

* Fig. 3(a): per-layer expert access frequencies are imbalanced.
* Fig. 3(b): the CDF of selected softmax-score sums — nearly all above 0.5,
  the majority above 0.7.
* Fig. 3(c): access frequencies stay stable across fine-tuning steps, and
  the measured drift respects the Theorem 1 sensitivity bound.
"""

import numpy as np
import pytest

from repro.bench import run_locality_experiment
from repro.bench.report import format_table, heatmap, series_panel

FINETUNE_STEPS = 120
PRETRAIN_STEPS = 40

_experiment = {}


def experiment():
    if "exp" not in _experiment:
        _experiment["exp"] = run_locality_experiment(
            finetune_steps=FINETUNE_STEPS, pretrain_steps=PRETRAIN_STEPS,
            seed=0)
    return _experiment["exp"]


def test_fig3a_access_frequency(benchmark):
    """Fig. 3(a): expert access frequency per layer is visibly imbalanced."""
    exp = benchmark.pedantic(experiment, rounds=1, iterations=1)
    p = exp.profile.probability_matrix
    print("\nFig. 3(a) — expert access frequency (layers x experts):")
    print(heatmap(p, row_label="L", max_value=1.0))
    rows = [[layer, *np.round(p[layer], 3).tolist()] for layer in range(len(p))]
    print(format_table(["layer"] + [f"e{e}" for e in range(p.shape[1])], rows))
    # every layer shows meaningful disparity between experts
    disparity = p.max(axis=1) - p.min(axis=1)
    assert np.all(disparity > 0.05)
    assert exp.profile.imbalance_ratio(0) > 2.0


def test_fig3b_score_cdf(benchmark):
    """Fig. 3(b): selected-score sums — all > ~0.5, majority > 0.7."""
    exp = benchmark.pedantic(experiment, rounds=1, iterations=1)
    scores, cdf = exp.profile.score_cdf()
    print("\nFig. 3(b) — cumulative distribution of selected score sums:")
    for q in (0.05, 0.25, 0.5, 0.75, 0.95):
        print(f"  quantile {q:.2f}: {np.quantile(scores, q):.3f}")
    assert exp.profile.fraction_above(0.5) > 0.95
    assert exp.profile.fraction_above(0.7) > 0.6


def test_fig3c_stability(benchmark):
    """Fig. 3(c): access frequencies stay flat through fine-tuning."""
    exp = benchmark.pedantic(experiment, rounds=1, iterations=1)
    freq = exp.access_over_time  # (steps, experts)
    print("\nFig. 3(c) — block-0 access frequency over fine-tuning steps:")
    print(series_panel({f"expert {e}": freq[:, e]
                        for e in range(freq.shape[1])}))
    assert exp.frequency_drift() < 0.06
    # Theorem 1: measured drift never exceeds the sensitivity bound.
    assert exp.stability.violations == 0


def test_theorem1_bound_is_informative(benchmark):
    """The bound tracks the drift (it is not vacuously loose everywhere)."""
    exp = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = exp.stability
    assert np.all(report.per_step_max_drift <= report.per_step_bound + 1e-9)
    assert report.per_step_bound.max() < 1.0  # non-vacuous
