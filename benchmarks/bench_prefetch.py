"""Predictive-prefetch benchmark: decode-latency CDF with/without prefetch.

Two halves, mirroring how the prefetcher is built:

**Modeled cells** (the headline): a 256-step Mixtral-scale decode replay on
a Fiddler-style offload rig — experts live in host RAM in the int8 format
and are fetched over PCIe on demand; compute is priced at a modest 2
TFLOP/s effective (hybrid CPU/GPU execution), so a continuous batch's
compute window is worth a handful of expert fetches, the regime where
overlap matters.  The routing stream carries *gate-history* structure
(:func:`~repro.serving.prefetch.markov_decode_stream`: per-layer expert
sets drift along a hidden transition cycle), and each cache capacity runs
five policies:

* ``off`` — demand fetching only (every miss is a synchronous stall);
* ``previous`` — the Fiddler baseline (prefetch the current experts);
* ``transition`` — the learned per-layer transition-count predictor;
* ``oracle`` — prediction upper bound (reads the future stream);
* ``belady`` — eviction upper bound (oracle cache, no prefetch).

**Live gates**: the sidecar must be invisible to the model — greedy ids
from ``LiveDecodeEngine`` and ``ContinuousBatchingEngine`` are asserted
bit-identical with prefetch on and off — and the online replication pass
must actually fire on a cross-node topology (hot experts promoted onto
the local worker, ``prefetch_replication`` event emitted).

Acceptance gates (hard, also enforced by ``--strict`` and CI):

* greedy ids bit-identical prefetch on/off, both engines;
* transition predictor beats the previous-token baseline on prediction
  accuracy at the headline capacity;
* transition predictor reduces un-hidden fetch bytes per decode step vs
  the previous-token baseline (which degenerates to demand fetching);
* live replication applies at least one hot-expert replica and logs it.

Everything is a deterministic modeled replay (seeded streams, FlopModel
compute, bandwidth-priced fetches) — no wall clocks, so CI comparisons
are exact up to float noise and ``--strict`` is safe to gate on.

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_prefetch.py \\
        --output BENCH_prefetch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table
from repro.cluster import paper_cluster
from repro.cluster.device import DeviceSpec, GiB
from repro.models import mixtral_8x7b_sim
from repro.models.presets import build_model, tiny_mistral
from repro.placement import LocalityAwarePlacement, PlacementProblem
from repro.serving import (ContinuousBatchingEngine, ExpertCache,
                           LiveDecodeEngine, OraclePredictor,
                           OverlappedFetchScheduler, PrefetchConfig,
                           PreviousTokenPredictor, ServingConfig,
                           TransitionPredictor, markov_decode_stream,
                           poisson_workload, stream_lookahead)
from repro.telemetry import RoutingHealthMonitor
from repro.telemetry.events import EventLog

SEED = 7
STEPS = 256
TOKENS_PER_STEP = 16          # continuous batch sharing one decode step
CAPACITIES = (96, 160, 224)   # of mixtral's 256 experts
HEADLINE_CAPACITY = 160
ADVANCE_PROB = 0.6            # gate-history drift rate of the stream
RESAMPLE_PROB = 0.05
CDF_QUANTILES = (10, 25, 50, 75, 90, 95, 99)

LIVE_DECODE_TOKENS = 40
REPLICATION_BUDGET = 6


def _offload_rig() -> ServingConfig:
    """Fiddler-style pricing: int8 experts over PCIe, modest compute."""
    rig = DeviceSpec(name="offload-rig", memory_bytes=64 * GiB,
                     effective_flops=2e12)
    return ServingConfig(device=rig, weight_format="int8")


def _policies(config, stream):
    """The five (policy, predictor, cache-kwargs) rows of one capacity."""
    return (
        ("off", lambda: None, {}),
        ("previous", PreviousTokenPredictor, {}),
        ("transition",
         lambda: TransitionPredictor(config.num_layers, config.num_experts),
         {}),
        ("oracle", lambda: OraclePredictor(stream), {}),
        ("belady", lambda: None,
         {"policy": "belady", "lookahead": stream_lookahead(stream)}),
    )


def measure_cells(capacities=CAPACITIES) -> list:
    """Replay the stream at every (capacity, policy) combination."""
    config = mixtral_8x7b_sim()
    serving = _offload_rig()
    stream = markov_decode_stream(config, STEPS,
                                  advance_prob=ADVANCE_PROB,
                                  resample_prob=RESAMPLE_PROB, seed=SEED)
    cells = []
    for capacity in capacities:
        for policy, make, cache_kwargs in _policies(config, stream):
            cache = ExpertCache(capacity, **cache_kwargs)
            scheduler = OverlappedFetchScheduler(config, make(), cache,
                                                 serving=serving)
            latencies = np.array([
                scheduler.step(step, tokens=TOKENS_PER_STEP).latency_s
                for step in stream])
            stats = scheduler.stats
            cells.append({
                "capacity": capacity,
                "policy": policy,
                "mean_latency_s": float(latencies.mean()),
                "latency_cdf_s": {str(q): float(np.percentile(latencies, q))
                                  for q in CDF_QUANTILES},
                "accuracy": stats.accuracy,
                "hit_rate": cache.stats.hit_rate,
                "unhidden_mb_per_step":
                    stats.unhidden_bytes_per_step / 1e6,
                "hidden_mb_per_step": stats.hidden_bytes / STEPS / 1e6,
                "sync_fetches": stats.sync_fetches,
                "prefetch_fetches": stats.prefetch_fetches,
            })
    return cells


# --------------------------------------------------------------------- #
# live gates
# --------------------------------------------------------------------- #
def _live_prefetch_config(**overrides) -> PrefetchConfig:
    defaults = dict(predictor="transition", cache_capacity=24)
    defaults.update(overrides)
    return PrefetchConfig(**defaults)


def measure_live_identity() -> dict:
    """Greedy ids with prefetch on vs off, both live engines."""
    config = tiny_mistral()
    rng = np.random.default_rng(SEED)
    prompt = rng.integers(0, config.vocab_size, size=(1, 16))

    plain = LiveDecodeEngine(build_model(config))
    ids_off = plain.decode(prompt, LIVE_DECODE_TOKENS)
    prefetching = LiveDecodeEngine(build_model(config),
                                   prefetch=_live_prefetch_config())
    ids_on = prefetching.decode(prompt, LIVE_DECODE_TOKENS)
    live_identical = bool(np.array_equal(ids_off, ids_on))
    live_stats = prefetching.prefetcher.stats

    requests = poisson_workload(6, 2.0, mean_decode_tokens=12, seed=3,
                                prompt_len=8, vocab_size=config.vocab_size)
    batch_off = ContinuousBatchingEngine(build_model(config), max_slots=4)
    outcomes_off = batch_off.serve(requests).outcomes
    batch_on = ContinuousBatchingEngine(build_model(config), max_slots=4,
                                        prefetch=_live_prefetch_config())
    outcomes_on = batch_on.serve(requests).outcomes
    batch_identical = all(
        np.array_equal(a.token_ids, b.token_ids)
        for a, b in zip(outcomes_off, outcomes_on))
    return {
        "ids_identical_live": live_identical,
        "ids_identical_batch": bool(batch_identical),
        "live_steps_observed": live_stats.steps,
        "live_accuracy": live_stats.accuracy,
        "batch_steps_observed": batch_on.prefetcher.stats.steps,
    }


def measure_live_replication() -> dict:
    """Hot-expert replication on the paper's 3-node cluster.

    The serving placement spreads mixing experts evenly (capacity 12 per
    worker), so most fetches price in a cross-node hop; the sidecar's
    replication pass must promote persistently-hot experts onto the
    local worker and hot-swap the engines + monitor.
    """
    config = tiny_mistral()
    topology = paper_cluster()
    capacities = [config.total_experts // topology.num_workers] \
        * topology.num_workers
    uniform = np.full((config.num_layers, config.num_experts),
                      1.0 / config.num_experts)
    placement = LocalityAwarePlacement().place(PlacementProblem(
        config, topology, probability_matrix=uniform,
        capacities=capacities))
    monitor = RoutingHealthMonitor(placement=placement)
    events = EventLog()
    engine = LiveDecodeEngine(
        build_model(config), monitor=monitor, events=events,
        prefetch=_live_prefetch_config(
            topology=topology, local_worker=0,
            replication_budget=REPLICATION_BUDGET,
            replication_interval=8, window_size=16))
    rng = np.random.default_rng(SEED)
    prompt = rng.integers(0, config.vocab_size, size=(1, 16))
    engine.decode(prompt, LIVE_DECODE_TOKENS)

    replicated = engine.prefetcher.placement
    replicas = int(getattr(replicated, "num_replicas", 0))
    replication_events = [e for e in events.events
                          if e.kind == "prefetch_replication"]
    # A pass staged on the very last decode step is still pending; the
    # engines land swaps at iteration boundaries, so drain it the same
    # way the next decode call would.
    engine.apply_pending_placement()
    return {
        "replication_budget": REPLICATION_BUDGET,
        "replicas": replicas,
        "replication_applied": replicas > 0,
        "replication_events": len(replication_events),
        "engine_swapped":
            getattr(engine.active_placement, "num_replicas", 0) > 0,
        "monitor_swapped":
            getattr(monitor.placement, "num_replicas", 0) > 0,
        "remote_mb": engine.prefetcher.stats.remote_bytes / 1e6,
    }


# --------------------------------------------------------------------- #
# headline
# --------------------------------------------------------------------- #
def build_headline(cells, identity, replication) -> dict:
    """Gate-relevant numbers at the headline capacity, in one dict."""
    at = {cell["policy"]: cell for cell in cells
          if cell["capacity"] == HEADLINE_CAPACITY}
    headline = {
        "preset": "mixtral_8x7b_sim",
        "steps": STEPS,
        "tokens_per_step": TOKENS_PER_STEP,
        "cache_capacity": HEADLINE_CAPACITY,
        "accuracy_previous": at["previous"]["accuracy"],
        "accuracy_transition": at["transition"]["accuracy"],
        "accuracy_oracle": at["oracle"]["accuracy"],
        "unhidden_mb_off": at["off"]["unhidden_mb_per_step"],
        "unhidden_mb_previous": at["previous"]["unhidden_mb_per_step"],
        "unhidden_mb_transition": at["transition"]["unhidden_mb_per_step"],
        "unhidden_mb_belady": at["belady"]["unhidden_mb_per_step"],
        "mean_latency_off_s": at["off"]["mean_latency_s"],
        "mean_latency_transition_s": at["transition"]["mean_latency_s"],
        "speedup": (at["off"]["mean_latency_s"]
                    / at["transition"]["mean_latency_s"]),
        "transition_beats_previous":
            at["transition"]["accuracy"] > at["previous"]["accuracy"],
        "transition_reduces_unhidden":
            (at["transition"]["unhidden_mb_per_step"]
             < at["previous"]["unhidden_mb_per_step"]),
    }
    headline.update(identity)
    headline.update(replication)
    return headline


def gates_pass(headline: dict) -> bool:
    """Every acceptance gate, in one place."""
    return (headline["ids_identical_live"]
            and headline["ids_identical_batch"]
            and headline["transition_beats_previous"]
            and headline["transition_reduces_unhidden"]
            and headline["replication_applied"])


# --------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------- #
def test_prefetch_identity_live():
    """Prefetch sidecar never changes LiveDecodeEngine greedy ids."""
    identity = measure_live_identity()
    assert identity["ids_identical_live"], identity
    assert identity["live_steps_observed"] == LIVE_DECODE_TOKENS


def test_prefetch_identity_batch():
    """Prefetch sidecar never changes ContinuousBatchingEngine ids."""
    identity = measure_live_identity()
    assert identity["ids_identical_batch"], identity


def test_transition_beats_previous():
    """Learned predictor wins on accuracy AND un-hidden bytes."""
    cells = measure_cells(capacities=(HEADLINE_CAPACITY,))
    at = {c["policy"]: c for c in cells}
    assert at["transition"]["accuracy"] > at["previous"]["accuracy"]
    assert at["transition"]["unhidden_mb_per_step"] < \
        at["previous"]["unhidden_mb_per_step"]
    assert at["oracle"]["accuracy"] == 1.0


def test_replication_applies_live():
    """Hot experts get replicated onto the local worker mid-decode."""
    replication = measure_live_replication()
    assert replication["replication_applied"], replication
    assert replication["engine_swapped"] and replication["monitor_swapped"]
    assert replication["replication_events"] >= 1


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Predictive-prefetch benchmark")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="headline capacity only (the live gates and "
                             "the replay are already CI-sized)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any acceptance gate misses")
    args = parser.parse_args(argv)

    capacities = (HEADLINE_CAPACITY,) if args.smoke else CAPACITIES
    cells = measure_cells(capacities=capacities)
    identity = measure_live_identity()
    replication = measure_live_replication()
    headline = build_headline(cells, identity, replication)

    rows = [[f"{cell['capacity']}/{cell['policy']}",
             f"{cell['mean_latency_s'] * 1e3:.1f}",
             f"{cell['latency_cdf_s']['99'] * 1e3:.1f}",
             f"{cell['accuracy']:.3f}",
             f"{cell['unhidden_mb_per_step']:.0f}",
             f"{cell['hidden_mb_per_step']:.0f}"]
            for cell in cells]
    print(format_table(
        ["capacity/policy", "mean ms", "p99 ms", "accuracy",
         "unhidden MB/step", "hidden MB/step"], rows))
    print(f"transition vs previous @ capacity {HEADLINE_CAPACITY}: "
          f"accuracy {headline['accuracy_transition']:.3f} vs "
          f"{headline['accuracy_previous']:.3f}, un-hidden "
          f"{headline['unhidden_mb_transition']:.0f} vs "
          f"{headline['unhidden_mb_previous']:.0f} MB/step "
          f"(speedup {headline['speedup']:.2f}x)")
    print(f"live ids identical: decode={headline['ids_identical_live']} "
          f"batch={headline['ids_identical_batch']}; replication applied "
          f"{headline['replicas']} replicas over "
          f"{headline['replication_events']} events")

    ok = gates_pass(headline)
    payload = {"cells": cells, "headline": headline}
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(f"prefetch benchmark -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
