"""Vectorized vs reference trace replay — speedup and equivalence benchmark.

Times the full trace replay of both step engines under the two modes at
every paper cell:

``reference``
    The seed's per-step loop over steps x layers x workers
    (``run_trace(mode="reference")``).
``vectorized``
    The batched replay: one ``ExpertBroker.plan_trace`` per run, fork-join
    spans and all-to-all costs as whole-trace numpy reductions
    (``run_trace(mode="vectorized")``, the default).

Every cell is equivalence-checked in the same run: all ``StepMetrics``
fields of the two modes must agree to ``< 1e-9`` relative divergence.  The
benchmark also times a cold vs cached ``run_full_evaluation`` — the cached
re-run must complete in under 10 % of the cold wall time — and measures the
telemetry subsystem's cost on the headline cell: disabled (the default
``telemetry=None``) must stay within 2 % of the plain vectorized replay,
and the enabled cost is reported for reference.

Run standalone for the JSON artifact (optionally with a Chrome-trace
export of the headline cell)::

    PYTHONPATH=src python benchmarks/bench_replay.py \\
        --output BENCH_replay.json --trace-out BENCH_replay_trace.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import run_full_evaluation
from repro.bench.report import format_table
from repro.bench.workloads import paper_workload
from repro.placement import PlacementProblem
from repro.placement.random_ import RandomPlacement
from repro.runtime.engine import ExpertParallelEngine, MasterWorkerEngine
from repro.telemetry import (RoutingHealthMonitor, Telemetry,
                             write_chrome_trace)

# (model, dataset, steps); (mixtral, wikitext, 60) is the acceptance point.
CELLS = [
    ("mixtral", "wikitext", 60),
    ("mixtral", "alpaca", 24),
    ("gritlm", "wikitext", 24),
    ("gritlm", "alpaca", 24),
]

HEADLINE_CELL = ("mixtral", "wikitext", 60)
HEADLINE_MIN_SPEEDUP = 5.0
EQUIVALENCE_TOL = 1e-9
CACHE_MAX_RATIO = 0.10
TELEMETRY_DISABLED_MAX_OVERHEAD = 0.02

_METRIC_FIELDS = ("total_time", "comm_time", "compute_time", "sync_time",
                  "allreduce_time", "total_bytes", "cross_node_bytes")


def _build_cell(model: str, dataset: str, steps: int):
    """Workload, trace, placement, and engine factories for one cell."""
    workload = paper_workload(model, dataset, seed=1)
    cfg = workload.config
    trace = workload.trace(steps)
    problem = PlacementProblem(config=cfg.model, topology=cfg.topology,
                               probability_matrix=workload.probability_matrix,
                               tokens_per_step=cfg.tokens_per_step)
    placement = RandomPlacement(seed=3).place(problem)

    def engines(telemetry_mw=None, telemetry_ep=None, monitor_mw=None,
                monitor_ep=None):
        return (MasterWorkerEngine(cfg.model, cfg.topology, placement,
                                   cfg.tokens_per_step, cfg.seq_len,
                                   telemetry=telemetry_mw,
                                   monitor=monitor_mw),
                ExpertParallelEngine(cfg.model, cfg.topology, placement,
                                     cfg.tokens_per_step, cfg.seq_len,
                                     telemetry=telemetry_ep,
                                     monitor=monitor_ep))

    engines.placement = placement
    return trace, engines


def _replay_time(engines, trace, mode: str, iters: int,
                 repeat: int = 1) -> float:
    """Min-of-``iters`` wall time of replaying the trace on both engines.

    ``repeat`` replays per timed sample amortize timer granularity when a
    single replay is sub-millisecond (the vectorized path).
    """
    best = float("inf")
    for _ in range(iters):
        mw, ep = engines()
        start = time.perf_counter()
        for _ in range(repeat):
            mw.run_trace(trace, mode=mode)
            ep.run_trace(trace, mode=mode)
        best = min(best, (time.perf_counter() - start) / repeat)
    return best


def max_divergence(engines, trace) -> float:
    """Max relative divergence of any StepMetrics field between the modes."""
    worst = 0.0
    for engine in engines():
        ref = engine.run_trace(trace, mode="reference")
        vec = engine.run_trace(trace, mode="vectorized")
        for a, b in zip(ref.steps, vec.steps):
            for name in _METRIC_FIELDS:
                x, y = getattr(a, name), getattr(b, name)
                if x == y == 0.0:
                    continue
                worst = max(worst, abs(x - y) / max(abs(x), abs(y)))
    return worst


def measure_cell(model: str, dataset: str, steps: int) -> dict:
    """Replay times, speedup, and divergence of one paper cell."""
    trace, engines = _build_cell(model, dataset, steps)
    t_ref = _replay_time(engines, trace, "reference", iters=2)
    t_vec = _replay_time(engines, trace, "vectorized", iters=3)
    return {
        "model": model,
        "dataset": dataset,
        "steps": steps,
        "reference_ms": t_ref * 1e3,
        "vectorized_ms": t_vec * 1e3,
        "speedup": t_ref / t_vec,
        "max_divergence": max_divergence(engines, trace),
    }


def measure_telemetry(model: str, dataset: str, steps: int,
                      iters: int = 5) -> dict:
    """Telemetry cost on one cell: disabled-vs-plain and enabled-vs-plain.

    ``telemetry=None`` (the default) takes the same code path as the plain
    replay plus one attribute check per instrumented site, so the disabled
    overhead measures timing noise around zero; the enabled run pays for
    real span/counter recording.
    """
    trace, engines = _build_cell(model, dataset, steps)
    # The two telemetry=None samplings time the identical code path, so any
    # measured gap is machine noise.  Interleave them with alternating order
    # (the sample taken second in a pair runs consistently slower under
    # sustained turbo decay) and amortize each sample over several replays
    # because a single vectorized replay is sub-millisecond.
    baseline, disabled = float("inf"), float("inf")
    for index in range(2 * iters):
        sample = _replay_time(engines, trace, "vectorized", iters=1, repeat=4)
        if index % 4 in (0, 3):
            baseline = min(baseline, sample)
        else:
            disabled = min(disabled, sample)
    enabled = float("inf")
    for _ in range(iters):
        mw, ep = engines(Telemetry(), Telemetry())
        start = time.perf_counter()
        mw.run_trace(trace, mode="vectorized")
        ep.run_trace(trace, mode="vectorized")
        enabled = min(enabled, time.perf_counter() - start)
    # The routing-health monitor digests every step (gauges + anomaly
    # checks), so its enabled cost is reported, not gated; monitor=None is
    # covered by the disabled measurement above (same one-attribute-check
    # contract as telemetry).
    monitored = float("inf")
    for _ in range(iters):
        mw, ep = engines(
            monitor_mw=RoutingHealthMonitor(placement=engines.placement),
            monitor_ep=RoutingHealthMonitor(placement=engines.placement))
        start = time.perf_counter()
        mw.run_trace(trace, mode="vectorized")
        ep.run_trace(trace, mode="vectorized")
        monitored = min(monitored, time.perf_counter() - start)
    return {
        "model": model,
        "dataset": dataset,
        "steps": steps,
        "baseline_ms": baseline * 1e3,
        "disabled_ms": disabled * 1e3,
        "enabled_ms": enabled * 1e3,
        "monitor_ms": monitored * 1e3,
        "disabled_overhead": disabled / baseline - 1.0,
        "enabled_overhead": enabled / baseline - 1.0,
        "monitor_overhead": monitored / baseline - 1.0,
    }


def export_headline_trace(path: Path, steps: int = 8) -> int:
    """Replay the headline cell with telemetry and write a Chrome trace."""
    model, dataset, _ = HEADLINE_CELL
    trace, engines = _build_cell(model, dataset, steps)
    tel_mw, tel_ep = Telemetry(), Telemetry()
    mw, ep = engines(tel_mw, tel_ep)
    mw.run_trace(trace, max_steps=steps)
    ep.run_trace(trace, max_steps=steps)
    write_chrome_trace(path, tel_mw.registry, tel_ep.registry,
                       names=[f"master-worker ({model}/{dataset})",
                              f"expert parallel ({model}/{dataset})"])
    return len(tel_mw.spans) + len(tel_ep.spans)


def measure_cache(num_steps: int, finetune_steps: int) -> dict:
    """Cold vs cached ``run_full_evaluation`` wall times."""
    cache_dir = tempfile.mkdtemp(prefix="bench_replay_cache_")
    try:
        start = time.perf_counter()
        cold = run_full_evaluation(num_steps=num_steps,
                                   finetune_steps=finetune_steps,
                                   cache_dir=cache_dir)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_full_evaluation(num_steps=num_steps,
                                   finetune_steps=finetune_steps,
                                   cache_dir=cache_dir)
        warm_s = time.perf_counter() - start
        identical = (cold.render(include_timing=False)
                     == warm.render(include_timing=False))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "num_steps": num_steps,
        "finetune_steps": finetune_steps,
        "cold_s": cold_s,
        "cached_s": warm_s,
        "ratio": warm_s / cold_s,
        "render_identical": identical,
    }


# --------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------- #
def test_headline_speedup(benchmark):
    """Acceptance point: >= 5x replay speedup, < 1e-9 divergence."""
    model, dataset, steps = HEADLINE_CELL
    result = benchmark.pedantic(
        lambda: measure_cell(model, dataset, steps), rounds=1, iterations=1)
    print(f"\nreplay @ {model}/{dataset} x{steps}: "
          f"reference {result['reference_ms']:.0f} ms, "
          f"vectorized {result['vectorized_ms']:.1f} ms, "
          f"speedup {result['speedup']:.1f}x, "
          f"divergence {result['max_divergence']:.2e}")
    assert result["max_divergence"] < EQUIVALENCE_TOL
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, result


def test_equivalence_all_cells():
    """Vectorized and reference replay agree at every paper cell."""
    for model, dataset, _ in CELLS:
        trace, engines = _build_cell(model, dataset, 6)
        divergence = max_divergence(engines, trace)
        assert divergence < EQUIVALENCE_TOL, (model, dataset, divergence)


def test_cached_rerun_fast():
    """A cached re-run completes in < 10% of the cold-run wall time."""
    result = measure_cache(num_steps=8, finetune_steps=8)
    assert result["render_identical"]
    assert result["ratio"] < CACHE_MAX_RATIO, result


def test_telemetry_disabled_is_free():
    """``telemetry=None`` replay stays within noise of the plain replay.

    The asserted bound is looser than the 2 % the standalone run reports,
    to absorb shared-CI timing jitter; both measurements run the identical
    code path.
    """
    result = measure_telemetry("mixtral", "wikitext", steps=24, iters=5)
    assert result["disabled_overhead"] < 0.10, result


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write a Chrome-trace JSON of the headline "
                             "cell's telemetry-enabled replay")
    parser.add_argument("--smoke", action="store_true",
                        help="headline cell + small cache check only (CI)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if the headline misses "
                             f"{HEADLINE_MIN_SPEEDUP}x or the cache misses "
                             f"{CACHE_MAX_RATIO:.0%}")
    args = parser.parse_args(argv)

    cells = [HEADLINE_CELL] if args.smoke else CELLS
    results = [measure_cell(*cell) for cell in cells]
    cache = (measure_cache(num_steps=8, finetune_steps=8) if args.smoke
             else measure_cache(num_steps=24, finetune_steps=40))
    telemetry = measure_telemetry("mixtral", "wikitext",
                                  steps=24 if args.smoke else 60)

    rows = [[f"{r['model']}/{r['dataset']} x{r['steps']}",
             f"{r['reference_ms']:.0f}",
             f"{r['vectorized_ms']:.1f}",
             f"{r['speedup']:.1f}x",
             f"{r['max_divergence']:.1e}"] for r in results]
    print(format_table(
        ["cell", "reference (ms)", "vectorized (ms)", "speedup",
         "divergence"], rows))
    print(f"cache: cold {cache['cold_s']:.2f}s -> cached "
          f"{cache['cached_s']:.2f}s ({cache['ratio']:.1%}), "
          f"renders identical: {cache['render_identical']}")
    print(f"telemetry: disabled {telemetry['disabled_ms']:.1f} ms "
          f"({telemetry['disabled_overhead']:+.1%} vs plain, max "
          f"{TELEMETRY_DISABLED_MAX_OVERHEAD:.0%}), enabled "
          f"{telemetry['enabled_ms']:.1f} ms "
          f"({telemetry['enabled_overhead']:+.1%}), monitor "
          f"{telemetry['monitor_ms']:.1f} ms "
          f"({telemetry['monitor_overhead']:+.1%})")
    if args.trace_out is not None:
        spans = export_headline_trace(args.trace_out)
        print(f"wrote {args.trace_out} ({spans} spans)")

    headline = next(r for r in results
                    if (r["model"], r["dataset"], r["steps"]) == HEADLINE_CELL)
    payload = {
        "cells": results,
        "cache": cache,
        "telemetry": telemetry,
        "headline": {
            "cell": list(HEADLINE_CELL),
            "speedup": headline["speedup"],
            "min_required": HEADLINE_MIN_SPEEDUP,
            "max_divergence": headline["max_divergence"],
            "divergence_tolerance": EQUIVALENCE_TOL,
            "cache_ratio": cache["ratio"],
            "cache_max_ratio": CACHE_MAX_RATIO,
        },
    }
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")

    ok = (headline["max_divergence"] < EQUIVALENCE_TOL
          and headline["speedup"] >= HEADLINE_MIN_SPEEDUP
          and cache["ratio"] < CACHE_MAX_RATIO
          and cache["render_identical"]
          and telemetry["disabled_overhead"] < TELEMETRY_DISABLED_MAX_OVERHEAD)
    print(f"headline: {headline['speedup']:.1f}x "
          f"(required {HEADLINE_MIN_SPEEDUP}x), cache {cache['ratio']:.1%} "
          f"(max {CACHE_MAX_RATIO:.0%}) -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
