"""Continuous-batching serving benchmark: slot-pool engine vs single-stream.

The live continuous-batching runtime (``repro.serving.scheduler``) admits
open-loop arrivals into a fixed pool of KV-cache slots and advances every
active request one token per batched engine step.  On a burst of
concurrent requests this amortizes the per-step Python + small-GEMM
overhead across the whole batch, so fleet throughput rises well above the
one-request-at-a-time ``LiveDecodeEngine`` baseline while each request's
greedy ids stay exactly what a solo decode would produce.

Acceptance gates (hard, also enforced by ``--strict`` and CI):

* batched throughput at 8 concurrent requests >= 3x sequential
  single-stream decoding of the same workload,
* a single request through the slot pool is greedy-bit-identical to
  ``LiveDecodeEngine.decode(mode="cached")``,
* every request of the batched headline run matches its solo decode.

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_serving_batch.py \\
        --output BENCH_serving_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table
from repro.models import build_model, tiny_mistral
from repro.serving import (ContinuousBatchingEngine, LiveDecodeEngine,
                           Request, poisson_workload)

# Headline: a burst of 8 concurrent requests, prompt 16 x decode 32, on a
# seeded tiny_mistral with an 8-slot pool, against decoding the same 8
# requests one at a time through LiveDecodeEngine.
HEADLINE_REQUESTS = 8
HEADLINE_PROMPT = 16
HEADLINE_DECODE = 32
HEADLINE_SLOTS = 8
MIN_THROUGHPUT_RATIO = 3.0

# Goodput SLOs for the headline report (generous: they characterize the
# tail, they are not the pass/fail gate — wall times are machine-relative).
SLO_TTFT_S = 5.0
SLO_TOKEN_LATENCY_S = 0.25

SWEEP_SLOTS = (1, 2, 4, 8)
SWEEP_RATES = (16.0, 64.0)  # requests/s into the open-loop stream
MAX_SEQ_LEN = 64


def _model():
    """A seeded tiny_mistral able to hold prompt + decode in every slot."""
    return build_model(tiny_mistral(seed=0, max_seq_len=MAX_SEQ_LEN))


def _burst_requests(num=HEADLINE_REQUESTS, prompt_len=HEADLINE_PROMPT,
                    decode=HEADLINE_DECODE, seed=5):
    """``num`` requests all arriving at t=0 with distinct random prompts."""
    rng = np.random.default_rng(seed)
    vocab = tiny_mistral().vocab_size
    return [Request(i, 0.0, decode,
                    prompt_ids=rng.integers(0, vocab, size=prompt_len))
            for i in range(num)]


def _sequential_baseline(model, requests, iters=2):
    """Wall time to decode the requests one at a time (single stream)."""
    engine = LiveDecodeEngine(model)
    best = float("inf")
    outputs = None
    for _ in range(iters):
        start = time.perf_counter()
        outs = [engine.decode(r.prompt_ids[None, :], r.decode_tokens)[0]
                for r in requests]
        best = min(best, time.perf_counter() - start)
        outputs = outs
    return best, outputs


def measure_headline(iters: int = 2) -> dict:
    """Batched vs sequential throughput plus both equivalence gates."""
    requests = _burst_requests()
    model = _model()
    seq_time, seq_outputs = _sequential_baseline(model, requests,
                                                 iters=iters)
    total_tokens = sum(r.decode_tokens for r in requests)

    best = None
    for _ in range(iters):
        engine = ContinuousBatchingEngine(_model(),
                                          max_slots=HEADLINE_SLOTS)
        metrics = engine.serve(requests)
        if best is None or metrics.wall_time < best.wall_time:
            best = metrics
    per_request_identical = all(
        np.array_equal(outcome.token_ids, solo)
        for outcome, solo in zip(best.outcomes, seq_outputs))

    # single-request anchor: one request, otherwise idle pool
    solo_engine = ContinuousBatchingEngine(_model(),
                                           max_slots=HEADLINE_SLOTS)
    solo = solo_engine.serve([requests[0]]).outcomes[0]
    single_request_identical = bool(np.array_equal(solo.token_ids,
                                                   seq_outputs[0]))

    batched_tput = best.throughput_tokens_per_s()
    seq_tput = total_tokens / seq_time
    return {
        "num_requests": HEADLINE_REQUESTS,
        "prompt_len": HEADLINE_PROMPT,
        "decode_tokens": HEADLINE_DECODE,
        "max_slots": HEADLINE_SLOTS,
        "sequential_s": seq_time,
        "batched_s": best.wall_time,
        "sequential_tokens_per_s": seq_tput,
        "batched_tokens_per_s": batched_tput,
        "throughput_ratio": batched_tput / seq_tput,
        "min_required": MIN_THROUGHPUT_RATIO,
        "single_request_identical": single_request_identical,
        "per_request_identical": per_request_identical,
        "token_latency_p50_ms": best.token_latency_percentile(50) * 1e3,
        "token_latency_p95_ms": best.token_latency_percentile(95) * 1e3,
        "token_latency_p99_ms": best.token_latency_percentile(99) * 1e3,
        "mean_ttft_ms": best.mean_ttft() * 1e3,
        "goodput_tokens_per_s": best.goodput_tokens_per_s(
            slo_ttft_s=SLO_TTFT_S,
            slo_token_latency_s=SLO_TOKEN_LATENCY_S),
        "slo": {"ttft_s": SLO_TTFT_S,
                "token_latency_s": SLO_TOKEN_LATENCY_S},
    }


def measure_slots_sweep(slots_grid=SWEEP_SLOTS) -> list:
    """The headline burst through pools of increasing size."""
    requests = _burst_requests()
    rows = []
    for slots in slots_grid:
        engine = ContinuousBatchingEngine(_model(), max_slots=slots)
        metrics = engine.serve(requests)
        rows.append({
            "max_slots": slots,
            "throughput_tokens_per_s": metrics.throughput_tokens_per_s(),
            "token_latency_p99_ms":
                metrics.token_latency_percentile(99) * 1e3,
            "mean_queueing_ms": metrics.mean_queueing() * 1e3,
            "mean_ttft_ms": metrics.mean_ttft() * 1e3,
            "p99_request_latency_ms": metrics.p99_latency() * 1e3,
        })
    return rows


def measure_rate_sweep(rates=SWEEP_RATES, slots=HEADLINE_SLOTS) -> list:
    """Open-loop Poisson arrivals at increasing rates, fixed pool size."""
    vocab = tiny_mistral().vocab_size
    rows = []
    for rate in rates:
        requests = poisson_workload(12, arrival_rate=rate,
                                    mean_decode_tokens=12, seed=7,
                                    prompt_len=(8, 16), vocab_size=vocab)
        requests = [r for r in requests
                    if r.prompt_len + r.decode_tokens <= MAX_SEQ_LEN]
        engine = ContinuousBatchingEngine(_model(), max_slots=slots)
        metrics = engine.serve(requests)
        rows.append({
            "arrival_rate": rate,
            "num_requests": len(requests),
            "throughput_tokens_per_s": metrics.throughput_tokens_per_s(),
            "mean_queueing_ms": metrics.mean_queueing() * 1e3,
            "mean_ttft_ms": metrics.mean_ttft() * 1e3,
            "p99_request_latency_ms": metrics.p99_latency() * 1e3,
        })
    return rows


# --------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------- #
def test_serving_batch_headline(benchmark):
    """Acceptance: >= 3x batched-vs-sequential throughput, ids identical."""
    result = benchmark.pedantic(measure_headline, rounds=1, iterations=1)
    print(f"\ncontinuous batching @ {result['num_requests']} requests x "
          f"{result['decode_tokens']} tokens: sequential "
          f"{result['sequential_tokens_per_s']:.0f} tok/s, batched "
          f"{result['batched_tokens_per_s']:.0f} tok/s "
          f"({result['throughput_ratio']:.1f}x)")
    assert result["single_request_identical"]
    assert result["per_request_identical"]
    assert result["throughput_ratio"] >= MIN_THROUGHPUT_RATIO, result


def test_continuous_engine_equivalence():
    """Every batched request matches its solo decode (small workload)."""
    requests = _burst_requests(num=4, prompt_len=8, decode=6)
    engine = ContinuousBatchingEngine(_model(), max_slots=2)
    metrics = engine.serve(requests)
    live = LiveDecodeEngine(_model())
    for request, outcome in zip(requests, metrics.outcomes):
        solo = live.decode(request.prompt_ids[None, :],
                           request.decode_tokens)[0]
        np.testing.assert_array_equal(outcome.token_ids, solo,
                                      err_msg=f"request "
                                              f"{outcome.request_id}")


def test_more_slots_do_not_hurt_throughput():
    """On the headline burst, a bigger pool never decodes slower by much."""
    rows = measure_slots_sweep(slots_grid=(1, 4))
    assert rows[1]["throughput_tokens_per_s"] >= \
        rows[0]["throughput_tokens_per_s"]


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Continuous-batching serving benchmark")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="headline only, single iteration (CI)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if the headline misses "
                             f"{MIN_THROUGHPUT_RATIO}x or ids diverge")
    args = parser.parse_args(argv)

    headline = measure_headline(iters=1 if args.smoke else 2)
    slots_sweep = [] if args.smoke else measure_slots_sweep()
    rate_sweep = [] if args.smoke else measure_rate_sweep()

    print(f"headline: {HEADLINE_REQUESTS} requests x "
          f"{HEADLINE_DECODE} tokens, prompt {HEADLINE_PROMPT}, "
          f"{HEADLINE_SLOTS} slots")
    print(format_table(
        ["mode", "tok/s", "wall (s)"],
        [["sequential", f"{headline['sequential_tokens_per_s']:.0f}",
          f"{headline['sequential_s']:.2f}"],
         ["batched", f"{headline['batched_tokens_per_s']:.0f}",
          f"{headline['batched_s']:.2f}"]]))
    print(f"throughput ratio {headline['throughput_ratio']:.1f}x "
          f"(required {MIN_THROUGHPUT_RATIO}x), token p50/p95/p99 "
          f"{headline['token_latency_p50_ms']:.1f}/"
          f"{headline['token_latency_p95_ms']:.1f}/"
          f"{headline['token_latency_p99_ms']:.1f} ms, goodput "
          f"{headline['goodput_tokens_per_s']:.0f} tok/s")

    if slots_sweep:
        print("\nslot-count sweep (same burst):")
        print(format_table(
            ["slots", "tok/s", "p99 token ms", "mean queue ms"],
            [[r["max_slots"], f"{r['throughput_tokens_per_s']:.0f}",
              f"{r['token_latency_p99_ms']:.1f}",
              f"{r['mean_queueing_ms']:.0f}"] for r in slots_sweep]))
    if rate_sweep:
        print("\narrival-rate sweep (8 slots, Poisson open loop):")
        print(format_table(
            ["req/s", "n", "tok/s", "mean ttft ms", "p99 latency ms"],
            [[f"{r['arrival_rate']:.0f}", r["num_requests"],
              f"{r['throughput_tokens_per_s']:.0f}",
              f"{r['mean_ttft_ms']:.0f}",
              f"{r['p99_request_latency_ms']:.0f}"] for r in rate_sweep]))

    ok = (headline["throughput_ratio"] >= MIN_THROUGHPUT_RATIO
          and headline["single_request_identical"]
          and headline["per_request_identical"])
    payload = {"headline": headline, "slots_sweep": slots_sweep,
               "rate_sweep": rate_sweep}
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(f"headline: {headline['throughput_ratio']:.1f}x "
          f"(required {MIN_THROUGHPUT_RATIO}x), equivalence "
          f"{'OK' if headline['single_request_identical'] and headline['per_request_identical'] else 'BROKEN'}"
          f" -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
