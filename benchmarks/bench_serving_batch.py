"""Continuous-batching serving benchmark: slot-pool engine vs single-stream.

The live continuous-batching runtime (``repro.serving.scheduler``) admits
open-loop arrivals into a fixed pool of KV-cache slots and advances every
active request one token per batched engine step.  On a burst of
concurrent requests this amortizes the per-step Python + small-GEMM
overhead across the whole batch, so fleet throughput rises well above the
one-request-at-a-time ``LiveDecodeEngine`` baseline while each request's
greedy ids stay exactly what a solo decode would produce.

Acceptance gates (hard, also enforced by ``--strict`` and CI):

* batched throughput at 8 concurrent requests >= 3x sequential
  single-stream decoding of the same workload,
* a single request through the slot pool is greedy-bit-identical to
  ``LiveDecodeEngine.decode(mode="cached")``,
* every request of the batched headline run matches its solo decode,
* request tracing (``tracing=``/``flight=``) is accounting-only: ids
  bit-identical with the full observability stack attached on both live
  engines, per-request ledgers tile the ``serve.prefetch_*`` counters,
  and the hooks-disabled serve loop costs <2% over plain construction.

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_serving_batch.py \\
        --output BENCH_serving_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table
from repro.models import build_model, tiny_mistral
from repro.serving import (ContinuousBatchingEngine, LiveDecodeEngine,
                           Request, poisson_workload)

# Headline: a burst of 8 concurrent requests, prompt 16 x decode 32, on a
# seeded tiny_mistral with an 8-slot pool, against decoding the same 8
# requests one at a time through LiveDecodeEngine.
HEADLINE_REQUESTS = 8
HEADLINE_PROMPT = 16
HEADLINE_DECODE = 32
HEADLINE_SLOTS = 8
MIN_THROUGHPUT_RATIO = 3.0

# Goodput SLOs for the headline report (generous: they characterize the
# tail, they are not the pass/fail gate — wall times are machine-relative).
SLO_TTFT_S = 5.0
SLO_TOKEN_LATENCY_S = 0.25

SWEEP_SLOTS = (1, 2, 4, 8)
SWEEP_RATES = (16.0, 64.0)  # requests/s into the open-loop stream
MAX_SEQ_LEN = 64

# Request-tracing gates (the `tracing` payload section, CI kind `tracing`):
# generated ids must be bit-identical with tracing on vs off on both live
# engines, per-request attributed bytes must tile the aggregate counters,
# and the tracing-disabled serve loop may cost at most 2% over baseline.
TRACING_MAX_OVERHEAD = 0.02
TRACING_TILE_REL_TOL = 1e-9
# field attributed by RequestTracer -> aggregate counter the engines feed
TRACING_COUNTERS = {
    "prefetch_hidden_bytes": "serve.prefetch_hidden_bytes",
    "prefetch_unhidden_bytes": "serve.prefetch_unhidden_bytes",
    "prefetch_remote_bytes": "serve.prefetch_remote_bytes",
}


def _model():
    """A seeded tiny_mistral able to hold prompt + decode in every slot."""
    return build_model(tiny_mistral(seed=0, max_seq_len=MAX_SEQ_LEN))


def _burst_requests(num=HEADLINE_REQUESTS, prompt_len=HEADLINE_PROMPT,
                    decode=HEADLINE_DECODE, seed=5):
    """``num`` requests all arriving at t=0 with distinct random prompts."""
    rng = np.random.default_rng(seed)
    vocab = tiny_mistral().vocab_size
    return [Request(i, 0.0, decode,
                    prompt_ids=rng.integers(0, vocab, size=prompt_len))
            for i in range(num)]


def _sequential_baseline(model, requests, iters=2):
    """Wall time to decode the requests one at a time (single stream)."""
    engine = LiveDecodeEngine(model)
    best = float("inf")
    outputs = None
    for _ in range(iters):
        start = time.perf_counter()
        outs = [engine.decode(r.prompt_ids[None, :], r.decode_tokens)[0]
                for r in requests]
        best = min(best, time.perf_counter() - start)
        outputs = outs
    return best, outputs


def measure_headline(iters: int = 2) -> dict:
    """Batched vs sequential throughput plus both equivalence gates."""
    requests = _burst_requests()
    model = _model()
    seq_time, seq_outputs = _sequential_baseline(model, requests,
                                                 iters=iters)
    total_tokens = sum(r.decode_tokens for r in requests)

    best = None
    for _ in range(iters):
        engine = ContinuousBatchingEngine(_model(),
                                          max_slots=HEADLINE_SLOTS)
        metrics = engine.serve(requests)
        if best is None or metrics.wall_time < best.wall_time:
            best = metrics
    per_request_identical = all(
        np.array_equal(outcome.token_ids, solo)
        for outcome, solo in zip(best.outcomes, seq_outputs))

    # single-request anchor: one request, otherwise idle pool
    solo_engine = ContinuousBatchingEngine(_model(),
                                           max_slots=HEADLINE_SLOTS)
    solo = solo_engine.serve([requests[0]]).outcomes[0]
    single_request_identical = bool(np.array_equal(solo.token_ids,
                                                   seq_outputs[0]))

    batched_tput = best.throughput_tokens_per_s()
    seq_tput = total_tokens / seq_time
    return {
        "num_requests": HEADLINE_REQUESTS,
        "prompt_len": HEADLINE_PROMPT,
        "decode_tokens": HEADLINE_DECODE,
        "max_slots": HEADLINE_SLOTS,
        "sequential_s": seq_time,
        "batched_s": best.wall_time,
        "sequential_tokens_per_s": seq_tput,
        "batched_tokens_per_s": batched_tput,
        "throughput_ratio": batched_tput / seq_tput,
        "min_required": MIN_THROUGHPUT_RATIO,
        "single_request_identical": single_request_identical,
        "per_request_identical": per_request_identical,
        "token_latency_p50_ms": best.token_latency_percentile(50) * 1e3,
        "token_latency_p95_ms": best.token_latency_percentile(95) * 1e3,
        "token_latency_p99_ms": best.token_latency_percentile(99) * 1e3,
        "mean_ttft_ms": best.mean_ttft() * 1e3,
        "goodput_tokens_per_s": best.goodput_tokens_per_s(
            slo_ttft_s=SLO_TTFT_S,
            slo_token_latency_s=SLO_TOKEN_LATENCY_S),
        "slo": {"ttft_s": SLO_TTFT_S,
                "token_latency_s": SLO_TOKEN_LATENCY_S},
    }


def measure_slots_sweep(slots_grid=SWEEP_SLOTS) -> list:
    """The headline burst through pools of increasing size."""
    requests = _burst_requests()
    rows = []
    for slots in slots_grid:
        engine = ContinuousBatchingEngine(_model(), max_slots=slots)
        metrics = engine.serve(requests)
        rows.append({
            "max_slots": slots,
            "throughput_tokens_per_s": metrics.throughput_tokens_per_s(),
            "token_latency_p99_ms":
                metrics.token_latency_percentile(99) * 1e3,
            "mean_queueing_ms": metrics.mean_queueing() * 1e3,
            "mean_ttft_ms": metrics.mean_ttft() * 1e3,
            "p99_request_latency_ms": metrics.p99_latency() * 1e3,
        })
    return rows


def measure_rate_sweep(rates=SWEEP_RATES, slots=HEADLINE_SLOTS) -> list:
    """Open-loop Poisson arrivals at increasing rates, fixed pool size."""
    vocab = tiny_mistral().vocab_size
    rows = []
    for rate in rates:
        requests = poisson_workload(12, arrival_rate=rate,
                                    mean_decode_tokens=12, seed=7,
                                    prompt_len=(8, 16), vocab_size=vocab)
        requests = [r for r in requests
                    if r.prompt_len + r.decode_tokens <= MAX_SEQ_LEN]
        engine = ContinuousBatchingEngine(_model(), max_slots=slots)
        metrics = engine.serve(requests)
        rows.append({
            "arrival_rate": rate,
            "num_requests": len(requests),
            "throughput_tokens_per_s": metrics.throughput_tokens_per_s(),
            "mean_queueing_ms": metrics.mean_queueing() * 1e3,
            "mean_ttft_ms": metrics.mean_ttft() * 1e3,
            "p99_request_latency_ms": metrics.p99_latency() * 1e3,
        })
    return rows


def measure_tracing(iters: int = 2) -> dict:
    """Request-tracing acceptance: bit-identity, byte tiling, overhead.

    Tracing is accounting-only, so every gate here is correctness rather
    than throughput: the live single-stream engine and the slot-pool
    engine must generate bit-identical ids with tracing + flight recording
    attached, the per-request ledgers must tile the aggregate
    ``serve.prefetch_*`` counters (the tracer's in-order mirror equals the
    counters bitwise; the cross-ledger sum may differ from the mirror only
    by float summation order, bounded at ``TRACING_TILE_REL_TOL``
    relative), and the disabled path — tracing hooks present but ``None``,
    the shipping default — must cost at most ``TRACING_MAX_OVERHEAD``
    over the plain construction.  The overhead run interleaves the two
    arms A B B A per iteration and takes min-of-samples, so thermal drift
    lands on both arms instead of masquerading as a regression.
    """
    from repro.serving.prefetch import PrefetchConfig
    from repro.telemetry import (FlightRecorder, RequestTracer, SLOConfig,
                                 Telemetry)

    requests = _burst_requests(num=6, prompt_len=8, decode=8, seed=11)
    slots = 4

    # Live single-stream engine: traced decode vs plain decode.
    prompt = requests[0].prompt_ids[None, :]
    plain_ids = LiveDecodeEngine(_model()).decode(prompt, 8)
    traced_ids = LiveDecodeEngine(
        _model(), tracing=RequestTracer(),
        flight=FlightRecorder(capacity=32)).decode(prompt, 8)
    ids_identical_live = bool(np.array_equal(plain_ids, traced_ids))

    # Slot-pool engine: full observability stack vs plain serve.
    baseline = ContinuousBatchingEngine(_model(),
                                        max_slots=slots).serve(requests)
    telemetry = Telemetry()
    tracer = RequestTracer(telemetry=telemetry,
                           slo=SLOConfig(ttft_s=60.0, token_latency_s=60.0,
                                         min_requests=4))
    traced = ContinuousBatchingEngine(
        _model(), max_slots=slots, telemetry=telemetry, tracing=tracer,
        flight=FlightRecorder(capacity=64),
        prefetch=PrefetchConfig()).serve(requests)
    ids_identical_batch = bool(
        len(baseline.outcomes) == len(traced.outcomes)
        and all(np.array_equal(a.token_ids, b.token_ids)
                for a, b in zip(baseline.outcomes, traced.outcomes)))

    # Ledger tiling: mirror == counter bitwise, ledger sums within the
    # float-summation-order residual of the mirror, and bytes flowed.
    tiling = {}
    for field, counter in TRACING_COUNTERS.items():
        mirror = tracer.totals.get(field, 0.0)
        aggregate = telemetry.counter(counter).value
        residual = abs(tracer.attribution_residual(field))
        tiling[field] = {
            "ledger_sum": tracer.attributed_total(field),
            "mirror": mirror,
            "counter": aggregate,
            "mirror_matches_counter": mirror == aggregate,
            "rel_residual": residual / max(abs(mirror), 1.0),
        }
    bytes_flowed = tiling["prefetch_hidden_bytes"]["counter"] > 0.0 \
        or tiling["prefetch_unhidden_bytes"]["counter"] > 0.0
    ledger_bytes_tile = bool(bytes_flowed and all(
        cell["mirror_matches_counter"]
        and cell["rel_residual"] <= TRACING_TILE_REL_TOL
        for cell in tiling.values()))

    # SLO burn-rate tracking observed every finished request and published
    # its gauges.
    slo_tracked = bool(
        tracer.slo is not None
        and tracer.slo.requests_observed == len(requests)
        and telemetry.gauge("serve.slo_good_fraction").updates > 0)

    # Disabled overhead: the hooks-off serve loop (explicit Nones — the
    # same branch every untraced caller takes) vs plain construction,
    # interleaved A B B A with min-of-samples, on the larger headline
    # burst so the 2% gate sits well above timer jitter.
    overhead_requests = _burst_requests()
    plain_s, disabled_s = [], []
    for index in range(4 * iters):
        if index % 4 in (0, 3):
            engine = ContinuousBatchingEngine(_model(),
                                              max_slots=HEADLINE_SLOTS)
            samples = plain_s
        else:
            engine = ContinuousBatchingEngine(_model(),
                                              max_slots=HEADLINE_SLOTS,
                                              tracing=None, flight=None)
            samples = disabled_s
        start = time.perf_counter()
        engine.serve(overhead_requests)
        samples.append(time.perf_counter() - start)
    disabled_overhead = min(disabled_s) / min(plain_s) - 1.0

    return {
        "num_requests": len(requests),
        "max_slots": slots,
        "ids_identical_live": ids_identical_live,
        "ids_identical_batch": ids_identical_batch,
        "ledger_bytes_tile": ledger_bytes_tile,
        "tiling": tiling,
        "slo_tracked": slo_tracked,
        "slo_burn_rate": tracer.slo.burn_rate("any"),
        "disabled_overhead": disabled_overhead,
        "max_overhead": TRACING_MAX_OVERHEAD,
        "tile_rel_tolerance": TRACING_TILE_REL_TOL,
    }


def tracing_ok(tracing: dict) -> bool:
    """True when every tracing acceptance gate passed."""
    return bool(tracing["ids_identical_live"]
                and tracing["ids_identical_batch"]
                and tracing["ledger_bytes_tile"]
                and tracing["slo_tracked"]
                and tracing["disabled_overhead"] <= tracing["max_overhead"])


# --------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------- #
def test_serving_batch_headline(benchmark):
    """Acceptance: >= 3x batched-vs-sequential throughput, ids identical."""
    result = benchmark.pedantic(measure_headline, rounds=1, iterations=1)
    print(f"\ncontinuous batching @ {result['num_requests']} requests x "
          f"{result['decode_tokens']} tokens: sequential "
          f"{result['sequential_tokens_per_s']:.0f} tok/s, batched "
          f"{result['batched_tokens_per_s']:.0f} tok/s "
          f"({result['throughput_ratio']:.1f}x)")
    assert result["single_request_identical"]
    assert result["per_request_identical"]
    assert result["throughput_ratio"] >= MIN_THROUGHPUT_RATIO, result


def test_continuous_engine_equivalence():
    """Every batched request matches its solo decode (small workload)."""
    requests = _burst_requests(num=4, prompt_len=8, decode=6)
    engine = ContinuousBatchingEngine(_model(), max_slots=2)
    metrics = engine.serve(requests)
    live = LiveDecodeEngine(_model())
    for request, outcome in zip(requests, metrics.outcomes):
        solo = live.decode(request.prompt_ids[None, :],
                           request.decode_tokens)[0]
        np.testing.assert_array_equal(outcome.token_ids, solo,
                                      err_msg=f"request "
                                              f"{outcome.request_id}")


def test_more_slots_do_not_hurt_throughput():
    """On the headline burst, a bigger pool never decodes slower by much."""
    rows = measure_slots_sweep(slots_grid=(1, 4))
    assert rows[1]["throughput_tokens_per_s"] >= \
        rows[0]["throughput_tokens_per_s"]


def test_tracing_gates():
    """Acceptance: tracing bit-identity, byte tiling, bounded overhead."""
    result = measure_tracing(iters=1)
    print(f"\ntracing: ids live/batch "
          f"{result['ids_identical_live']}/{result['ids_identical_batch']}, "
          f"tiling {result['ledger_bytes_tile']}, disabled overhead "
          f"{result['disabled_overhead']:+.2%} "
          f"(limit {result['max_overhead']:.0%})")
    assert result["ids_identical_live"], result
    assert result["ids_identical_batch"], result
    assert result["ledger_bytes_tile"], result["tiling"]
    assert result["slo_tracked"], result
    assert result["disabled_overhead"] <= result["max_overhead"], result


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Continuous-batching serving benchmark")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="headline only, single iteration (CI)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if the headline misses "
                             f"{MIN_THROUGHPUT_RATIO}x or ids diverge")
    args = parser.parse_args(argv)

    headline = measure_headline(iters=1 if args.smoke else 2)
    tracing = measure_tracing(iters=1 if args.smoke else 2)
    slots_sweep = [] if args.smoke else measure_slots_sweep()
    rate_sweep = [] if args.smoke else measure_rate_sweep()

    print(f"headline: {HEADLINE_REQUESTS} requests x "
          f"{HEADLINE_DECODE} tokens, prompt {HEADLINE_PROMPT}, "
          f"{HEADLINE_SLOTS} slots")
    print(format_table(
        ["mode", "tok/s", "wall (s)"],
        [["sequential", f"{headline['sequential_tokens_per_s']:.0f}",
          f"{headline['sequential_s']:.2f}"],
         ["batched", f"{headline['batched_tokens_per_s']:.0f}",
          f"{headline['batched_s']:.2f}"]]))
    print(f"throughput ratio {headline['throughput_ratio']:.1f}x "
          f"(required {MIN_THROUGHPUT_RATIO}x), token p50/p95/p99 "
          f"{headline['token_latency_p50_ms']:.1f}/"
          f"{headline['token_latency_p95_ms']:.1f}/"
          f"{headline['token_latency_p99_ms']:.1f} ms, goodput "
          f"{headline['goodput_tokens_per_s']:.0f} tok/s")

    if slots_sweep:
        print("\nslot-count sweep (same burst):")
        print(format_table(
            ["slots", "tok/s", "p99 token ms", "mean queue ms"],
            [[r["max_slots"], f"{r['throughput_tokens_per_s']:.0f}",
              f"{r['token_latency_p99_ms']:.1f}",
              f"{r['mean_queueing_ms']:.0f}"] for r in slots_sweep]))
    if rate_sweep:
        print("\narrival-rate sweep (8 slots, Poisson open loop):")
        print(format_table(
            ["req/s", "n", "tok/s", "mean ttft ms", "p99 latency ms"],
            [[f"{r['arrival_rate']:.0f}", r["num_requests"],
              f"{r['throughput_tokens_per_s']:.0f}",
              f"{r['mean_ttft_ms']:.0f}",
              f"{r['p99_request_latency_ms']:.0f}"] for r in rate_sweep]))

    print(f"\ntracing: ids live/batch "
          f"{tracing['ids_identical_live']}/{tracing['ids_identical_batch']},"
          f" ledger tiling {tracing['ledger_bytes_tile']}, slo "
          f"{tracing['slo_tracked']}, disabled overhead "
          f"{tracing['disabled_overhead']:+.2%} "
          f"(limit {tracing['max_overhead']:.0%})")

    ok = (headline["throughput_ratio"] >= MIN_THROUGHPUT_RATIO
          and headline["single_request_identical"]
          and headline["per_request_identical"]
          and tracing_ok(tracing))
    payload = {"headline": headline, "tracing": tracing,
               "slots_sweep": slots_sweep, "rate_sweep": rate_sweep}
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(f"headline: {headline['throughput_ratio']:.1f}x "
          f"(required {MIN_THROUGHPUT_RATIO}x), equivalence "
          f"{'OK' if headline['single_request_identical'] and headline['per_request_identical'] else 'BROKEN'}"
          f", tracing {'OK' if tracing_ok(tracing) else 'BROKEN'}"
          f" -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
