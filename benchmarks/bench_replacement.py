"""Online re-placement benchmark: traffic-shift replay with live migration.

A 60-step Mixtral fine-tuning replay on the paper's 3-node cluster whose
routing hot set shifts at step 30.  The locality monitor latches a
collapse, the :class:`~repro.placement.replan.ReplacementController`
re-solves placement against its post-shift routing window, prices the
expert migration through the comm model, and hot-swaps the broker.  The
headline measures what the swap actually bought: cross-node bytes per
step after the swap versus a shadow broker frozen on the stale placement.

Acceptance gates (hard, also enforced by ``--strict`` and CI):

* the controller applies exactly one migration after the shift, and its
  break-even point lands within the steps remaining in the run;
* measured cross-node traffic drops >= 20% post-swap vs. the frozen
  shadow placement;
* measured cumulative savings exceed the migration's own cross-node
  bytes (the move repaid itself inside the replay);
* a shift the controller prices over a too-short horizon is declined and
  logged as ``replacement_skipped`` (no placement change).

Everything here is a deterministic replay of seeded synthetic routing —
byte counts, not wall times — so CI comparisons are exact up to float
noise.

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_replacement.py \\
        --output BENCH_replacement.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table
from repro.cluster import paper_cluster
from repro.comm.cost import CommCostModel
from repro.core.adaptive import phase_switch_trace
from repro.core.config import VelaConfig
from repro.models import mixtral_8x7b_sim
from repro.placement import (LocalityAwarePlacement, PlacementProblem,
                             ReplacementController, ReplanConfig)
from repro.routing import WIKITEXT_REGIME, SyntheticRouter
from repro.runtime.broker import ExpertBroker
from repro.telemetry import MonitorThresholds, RoutingHealthMonitor

STEPS_PER_PHASE = 30
SEED = 7
# healthy locality hit rate on this cluster is ~0.115 (master hosts 16 of
# 256 experts); the shifted regime lands near 0.065 — 0.08 discriminates.
LOCALITY_THRESHOLD = 0.08
MIN_CROSS_NODE_DROP = 0.20

REPLAN = dict(window_size=8, min_window_steps=5, cooldown_steps=10,
              horizon_steps=25)


def _scenario(steps_per_phase=STEPS_PER_PHASE, horizon_steps=None):
    """Build the shift replay: monitor + controller + live/shadow brokers."""
    model = mixtral_8x7b_sim()
    topology = paper_cluster()
    config = VelaConfig(model, topology, batch_size=16, seq_len=256)
    capacities = config.worker_capacities()
    trace = phase_switch_trace(model, [WIKITEXT_REGIME, WIKITEXT_REGIME],
                               config.tokens_per_step,
                               steps_per_phase=steps_per_phase, seed=SEED)
    router = SyntheticRouter(model, WIKITEXT_REGIME, seed=SEED)
    problem = PlacementProblem(
        config=model, topology=topology,
        probability_matrix=router.probability_matrix(config.profile_tokens),
        tokens_per_step=config.tokens_per_step, capacities=capacities)
    placement = LocalityAwarePlacement().place(problem)
    monitor = RoutingHealthMonitor(
        placement=placement,
        thresholds=MonitorThresholds(
            min_locality_hit_rate=LOCALITY_THRESHOLD))
    broker = ExpertBroker(model, placement, topology.num_workers)
    replan = dict(REPLAN)
    if horizon_steps is not None:
        replan["horizon_steps"] = horizon_steps
    controller = ReplacementController(
        model, topology, placement, tokens_per_step=config.tokens_per_step,
        capacities=capacities, monitor=monitor, targets=[broker],
        replan=ReplanConfig(**replan))
    return dict(model=model, topology=topology, trace=trace,
                placement=placement, monitor=monitor, broker=broker,
                controller=controller,
                cost=CommCostModel(model, topology),
                shadow=ExpertBroker(model, placement, topology.num_workers))


def _replay(scenario):
    """Drive the trace through monitor + brokers; returns per-step bytes."""
    cost, broker, shadow = (scenario["cost"], scenario["broker"],
                            scenario["shadow"])
    live_bytes, shadow_bytes = [], []
    for step, counts in enumerate(scenario["trace"].counts):
        scenario["monitor"].observe_step(counts, step=step)
        live_bytes.append(cost.cross_node_bytes(broker.plan_step(counts).tokens))
        shadow_bytes.append(
            cost.cross_node_bytes(shadow.plan_step(counts).tokens))
    return live_bytes, shadow_bytes


def measure_headline() -> dict:
    """The shift replay: migration applied, priced, and measured."""
    scenario = _scenario()
    live_bytes, shadow_bytes = _replay(scenario)
    controller = scenario["controller"]
    steps = len(live_bytes)

    applied = [d for d in controller.history if d.outcome == "applied"]
    result = {
        "steps": steps,
        "shift_step": STEPS_PER_PHASE,
        "tokens_per_step": controller.tokens_per_step,
        "decisions": len(controller.history),
        "applied": len(applied) == 1,
        "min_cross_node_drop": MIN_CROSS_NODE_DROP,
    }
    if not applied:
        return result

    decision = applied[0]
    report = decision.report
    start = decision.step + 1
    remaining = steps - start
    old = float(np.mean(shadow_bytes[start:]))
    new = float(np.mean(live_bytes[start:]))
    migration = decision.plan.cross_node_bytes(scenario["topology"])
    saved = float(sum(o - n for o, n in zip(shadow_bytes[start:],
                                            live_bytes[start:])))
    events = scenario["monitor"].event_log.events
    result.update({
        "applied_step": decision.step,
        "remaining_steps": remaining,
        "experts_moved": len(decision.plan.moves),
        "migration_cross_bytes": migration,
        "migration_time_s": report.migration_time_s,
        # projections (from the controller's own break-even report)
        "projected_saved_bytes_per_step": report.saved_bytes_per_step,
        "break_even_steps": report.break_even_steps,
        "benefit_ratio": report.benefit_ratio,
        # measurements (live broker vs frozen shadow, post-swap)
        "old_bytes_per_step": old,
        "new_bytes_per_step": new,
        "cross_node_drop": 1.0 - new / old,
        "measured_saved_bytes": saved,
        "recouped_within_remaining": bool(saved > migration),
        "recovered": any(e.kind == "locality_collapse.recovered"
                         for e in events),
    })
    return result


def measure_unprofitable() -> dict:
    """The same shift priced over a 2-step horizon: must be declined."""
    scenario = _scenario(steps_per_phase=20, horizon_steps=2)
    _replay(scenario)
    controller = scenario["controller"]
    skipped = [d for d in controller.history if d.outcome == "skipped"
               and d.reason == "unprofitable"]
    events = [e for e in scenario["monitor"].event_log.events
              if e.kind == "replacement_skipped"]
    return {
        "horizon_steps": 2,
        "decisions": len(controller.history),
        "skipped_unprofitable": (len(controller.history) > 0
                                 and len(skipped) == len(controller.history)),
        "skip_events_logged": len(events) == len(controller.history),
        "placement_unchanged":
            controller.placement is scenario["placement"],
    }


def gates_pass(headline: dict, unprofitable: dict) -> bool:
    """Every acceptance gate, in one place."""
    return (headline.get("applied", False)
            and headline["cross_node_drop"] >= MIN_CROSS_NODE_DROP
            and headline["recouped_within_remaining"]
            and headline["break_even_steps"] <= headline["remaining_steps"]
            and unprofitable["skipped_unprofitable"]
            and unprofitable["placement_unchanged"])


# --------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------- #
def test_replacement_headline():
    """Acceptance: applied, >= 20% measured drop, recouped in-run."""
    headline = measure_headline()
    assert headline["applied"], headline
    assert headline["cross_node_drop"] >= MIN_CROSS_NODE_DROP, headline
    assert headline["recouped_within_remaining"], headline
    assert headline["break_even_steps"] <= headline["remaining_steps"]


def test_replacement_declines_unprofitable():
    unprofitable = measure_unprofitable()
    assert unprofitable["skipped_unprofitable"], unprofitable
    assert unprofitable["placement_unchanged"]


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Online re-placement benchmark")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="accepted for CI symmetry (the replay is "
                             "already CI-sized and deterministic)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any acceptance gate misses")
    args = parser.parse_args(argv)

    headline = measure_headline()
    unprofitable = measure_unprofitable()

    if headline.get("applied"):
        print(f"traffic shift at step {headline['shift_step']}, migration "
              f"applied at step {headline['applied_step']} "
              f"({headline['experts_moved']} experts, "
              f"{headline['migration_cross_bytes'] / 1e9:.2f} GB cross-node, "
              f"{headline['migration_time_s']:.1f} s)")
        saved_measured = (headline["old_bytes_per_step"]
                          - headline["new_bytes_per_step"])
        print(format_table(
            ["cross-node GB/step", "stale placement", "after swap", "saved"],
            [["measured (vs shadow)",
              f"{headline['old_bytes_per_step'] / 1e9:.2f}",
              f"{headline['new_bytes_per_step'] / 1e9:.2f}",
              f"{saved_measured / 1e9:.2f}"]]))
        print(f"projected saving "
              f"{headline['projected_saved_bytes_per_step'] / 1e9:.2f} "
              f"GB/step, break-even {headline['break_even_steps']:.1f} "
              f"steps (<= {headline['remaining_steps']} remaining)")
        print(f"measured cross-node drop "
              f"{headline['cross_node_drop']:.1%} "
              f"(required {MIN_CROSS_NODE_DROP:.0%}); cumulative saved "
              f"{headline['measured_saved_bytes'] / 1e9:.1f} GB vs "
              f"migration {headline['migration_cross_bytes'] / 1e9:.1f} GB "
              f"-> recouped: {headline['recouped_within_remaining']}")
    else:
        print("headline replay never applied a migration")
    print(f"unprofitable scenario (horizon 2): "
          f"{unprofitable['decisions']} decisions, all declined: "
          f"{unprofitable['skipped_unprofitable']}")

    ok = gates_pass(headline, unprofitable)
    payload = {"headline": headline, "unprofitable": unprofitable}
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(f"replacement benchmark -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
