"""MoE architecture sweep: how routing design changes VELA's value.

The paper evaluates Mixtral-class models (8 experts, top-2).  This bench
asks how the placement win generalizes across the MoE design space:

* **Mixtral** (8 experts, top-2) — the paper's regime,
* **Switch-style** (64 experts, top-1) — few selections, extreme skew
  possible, tiny per-token traffic,
* **DeepSeek-style** (64 fine-grained experts, top-6) — many selections per
  token, diffuse load.

It also measures the hierarchical solver against the flat LP where both run.
"""

import numpy as np
import pytest

from repro.bench.report import format_table, percent
from repro.cluster import ExpertMemoryModel, paper_cluster
from repro.models import deepseek_moe_sim, mixtral_8x7b_sim, switch_xxl_sim
from repro.placement import (HierarchicalPlacement, LocalityAwarePlacement,
                             PlacementProblem, SequentialPlacement,
                             expected_step_comm_time)
from repro.routing import SyntheticRouter, WIKITEXT_REGIME

ARCHES = {
    "mixtral-8x7b (top-2/8)": mixtral_8x7b_sim,
    "switch-xxl (top-1/64)": switch_xxl_sim,
    "deepseek-moe (top-6/64)": deepseek_moe_sim,
}


def build_problem(config, tokens=1920, seed=1):
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=seed)
    capacities = ExpertMemoryModel().capacities(topology, config)
    if sum(capacities) < config.total_experts:
        # Switch/DeepSeek carry 6-7x Mixtral's expert count; model a cluster
        # provisioned to the same relative tightness as the paper's (master
        # GPU at ~1/3 of a worker's share, ~10% total slack).
        share = config.total_experts // topology.num_workers
        master_share = max(share // 3, 1)
        worker_share = (config.total_experts - master_share) // \
            (topology.num_workers - 1) + int(0.1 * share) + 1
        capacities = [master_share] + [worker_share] * (topology.num_workers - 1)
    return PlacementProblem(config=config, topology=topology,
                            probability_matrix=router.probability_matrix(8192),
                            tokens_per_step=tokens, capacities=capacities)


def test_architecture_sweep(benchmark):
    """Eq. (7) reduction of VELA vs sequential across MoE designs."""

    def sweep():
        rows = []
        for name, factory in ARCHES.items():
            problem = build_problem(factory())
            vela = expected_step_comm_time(
                LocalityAwarePlacement().place(problem), problem)
            seq = expected_step_comm_time(
                SequentialPlacement().place(problem), problem)
            rows.append([name, seq * 1e3, vela * 1e3,
                         percent(1 - vela / seq)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nArchitecture sweep (comm-time objective, WikiText regime):")
    print(format_table(["architecture", "sequential (ms)", "vela (ms)",
                        "reduction"], rows))
    reductions = [float(r[3].rstrip("%")) for r in rows]
    assert all(r > 0 for r in reductions)


def test_hierarchical_vs_flat_at_scale(benchmark):
    """Decomposed solve stays close to the flat LP, at lower solve cost."""
    import time

    config = switch_xxl_sim()
    problem = build_problem(config, tokens=1024)

    def run():
        out = {}
        for name, strategy in [("flat", LocalityAwarePlacement()),
                               ("hierarchical", HierarchicalPlacement())]:
            start = time.time()
            placement = strategy.place(problem)
            out[name] = (expected_step_comm_time(placement, problem),
                         time.time() - start)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, obj * 1e3, solve * 1e3]
            for name, (obj, solve) in results.items()]
    print("\nFlat vs hierarchical at 1,536 experts (switch-xxl):")
    print(format_table(["solver", "objective (ms)", "solve time (ms)"], rows))
    flat_obj, _ = results["flat"]
    hier_obj, _ = results["hierarchical"]
    assert hier_obj <= 1.5 * flat_obj


def test_top1_concentration_extreme(benchmark):
    """Top-1 routing concentrates load harder than top-2 at equal skew."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mixtral_router = SyntheticRouter(mixtral_8x7b_sim(), WIKITEXT_REGIME,
                                     seed=1)
    switch_router = SyntheticRouter(switch_xxl_sim(), WIKITEXT_REGIME, seed=1)
    mix_p = mixtral_router.probability_matrix(8192)
    swi_p = switch_router.probability_matrix(8192)
    # share of a layer's selections going to its single hottest expert
    mix_top1 = float((np.sort(mix_p, axis=1)[:, -1] / mix_p.sum(axis=1)).mean())
    swi_top1 = float((np.sort(swi_p, axis=1)[:, -1] / swi_p.sum(axis=1)).mean())
    print(f"\nmean top-1 expert share: mixtral {percent(mix_top1)}, "
          f"switch {percent(swi_top1)}")
    assert 0 < mix_top1 < 1 and 0 < swi_top1 < 1
