"""Fig. 5 — cross-node traffic per node under each placement strategy.

Four subfigures: {Mixtral, GritLM} x {WikiText, Alpaca}.  Each replays one
simulated fine-tuning run (identical routing trace) under conventional
expert parallelism (EP), sequential and random placement inside VELA's
framework, and VELA's locality-aware placement.

Paper's measured shape (Section V-B): baselines cluster around ~866 MB/node/
step; VELA reduces traffic by 18.1-25.3 % (WikiText) and 17.3-20.1 %
(Alpaca) vs EP; the advantage persists across all steps.
"""

import numpy as np
import pytest

from conftest import comparison
from repro.bench.report import format_table, percent, series_panel


def print_cell(exp):
    print(f"\nFig. 5 — external traffic per node, {exp.workload_name}:")
    print(series_panel(exp.traffic_series_mb(), unit="MB/step"))
    rows = [[name, mb] for name, mb in exp.traffic_mb_per_node().items()]
    print(format_table(["strategy", "MB/node/step"], rows, float_fmt="{:.0f}"))
    print(f"vela vs EP: -{percent(exp.traffic_reduction_vs_ep())}")


def check_shape(exp, low, high):
    traffic = exp.traffic_mb_per_node()
    assert traffic["vela"] == min(traffic.values())
    red = exp.traffic_reduction_vs_ep()
    assert low < red < high, f"reduction {red:.3f} outside [{low}, {high}]"
    # VELA's advantage holds at every step, not just on average (paper:
    # "the benefit of VELA remains consistent throughout").
    vela = exp.runs["vela"].external_traffic_series()
    ep = exp.runs["expert_parallel"].external_traffic_series()
    assert np.all(vela < ep)


def test_fig5a_mixtral_wikitext(benchmark, mixtral_wikitext):
    exp = benchmark.pedantic(lambda: mixtral_wikitext, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.15, 0.35)


def test_fig5b_mixtral_alpaca(benchmark, mixtral_alpaca):
    exp = benchmark.pedantic(lambda: mixtral_alpaca, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.10, 0.30)


def test_fig5c_gritlm_wikitext(benchmark, gritlm_wikitext):
    exp = benchmark.pedantic(lambda: gritlm_wikitext, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.12, 0.40)


def test_fig5d_gritlm_alpaca(benchmark, gritlm_alpaca):
    exp = benchmark.pedantic(lambda: gritlm_alpaca, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.08, 0.35)


def test_baseline_traffic_magnitude(benchmark, mixtral_wikitext):
    """Section V-B arithmetic: ~866 MB of external token traffic per node
    per step for unoptimized placements, >1 TB total over a 500-step run."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ep = mixtral_wikitext.runs["expert_parallel"]
    per_node = ep.avg_external_traffic_per_node()
    assert 0.6e9 < per_node < 1.3e9
    # Extrapolated to the paper's 500 steps and 3 nodes: multi-TB total.
    total_500 = per_node * 3 * 500
    assert total_500 > 1e12


def test_wikitext_benefit_exceeds_alpaca(benchmark, mixtral_wikitext,
                                         mixtral_alpaca):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert mixtral_wikitext.traffic_reduction_vs_ep() > \
        mixtral_alpaca.traffic_reduction_vs_ep()
