"""Offloaded-serving benchmarks: expert caching under decode-time locality.

Extension territory (the paper's related work: Lina, Fiddler, MoE-Infinity).
Sweeps cache capacity and eviction policy on decode streams whose locality
matches the fine-tuning regimes, showing that (1) skew is what makes small
caches viable and (2) profile-pinned caching beats oblivious LRU.
"""

import numpy as np
import pytest

from repro.bench.report import format_table, percent
from repro.models import mixtral_8x7b_sim, nano_moe
from repro.routing import SyntheticRouter, UNIFORM_REGIME, WIKITEXT_REGIME
from repro.serving import (DecodeSimulator, ExpertCache, ServingConfig,
                           hot_expert_keys)

TOKENS = 150


def run_serving(config, regime, capacity, policy="lru", seed=1):
    router = SyntheticRouter(config, regime, seed=seed)
    pinned = None
    if policy == "pinned":
        profile = router.probability_matrix(8192)
        pinned = hot_expert_keys(profile, max(capacity - config.num_layers, 1))
    cache = ExpertCache(capacity=capacity, policy=policy, pinned=pinned)
    return DecodeSimulator(config, router, cache, seed=seed).run(TOKENS)


def test_cache_capacity_sweep(benchmark):
    """Hit rate and latency vs cache size (Mixtral-scale, WikiText skew)."""
    config = mixtral_8x7b_sim()
    fractions = (0.25, 0.5, 0.75, 1.0)

    def sweep():
        rows = []
        for fraction in fractions:
            capacity = max(int(config.total_experts * fraction), 1)
            metrics = run_serving(config, WIKITEXT_REGIME, capacity)
            rows.append([f"{fraction:.0%}", capacity,
                         percent(metrics.hit_rate),
                         metrics.mean_latency() * 1e3,
                         metrics.p99_latency() * 1e3])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nCache capacity sweep (decode, Mixtral/WikiText):")
    print(format_table(["cache", "experts", "hit rate", "mean ms/token",
                        "p99 ms/token"], rows))
    hit_rates = [float(r[2].rstrip("%")) for r in rows]
    latencies = [r[3] for r in rows]
    assert hit_rates == sorted(hit_rates)
    assert latencies == sorted(latencies, reverse=True)


def test_policy_comparison(benchmark):
    """LRU vs LFU vs profile-pinned at half-capacity."""
    config = mixtral_8x7b_sim()
    capacity = config.total_experts // 2

    def compare():
        return {policy: run_serving(config, WIKITEXT_REGIME, capacity, policy)
                for policy in ("lru", "lfu", "pinned")}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [[policy, percent(m.hit_rate), m.mean_latency() * 1e3]
            for policy, m in results.items()]
    print(f"\nEviction policy comparison (capacity {capacity}/256):")
    print(format_table(["policy", "hit rate", "mean ms/token"], rows))
    assert results["pinned"].hit_rate >= results["lru"].hit_rate - 0.02


def test_skew_is_what_makes_offloading_work(benchmark):
    """Uniform routing defeats the cache; locality saves it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = mixtral_8x7b_sim()
    capacity = config.total_experts // 2
    skewed = run_serving(config, WIKITEXT_REGIME, capacity)
    uniform = run_serving(config, UNIFORM_REGIME, capacity)
    print(f"\nhit rate at 50% capacity: wikitext-skew "
          f"{percent(skewed.hit_rate)}, uniform {percent(uniform.hit_rate)}")
    assert skewed.hit_rate > uniform.hit_rate + 0.05


def test_speculative_prefetch(benchmark):
    """Previous-token speculation hides fetches behind decode compute."""
    from repro.serving import ExpertCache
    from repro.serving.prefetch import PrefetchingDecodeSimulator

    config = mixtral_8x7b_sim()
    capacity = config.total_experts // 2

    def run():
        plain = run_serving(config, WIKITEXT_REGIME, capacity)
        router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
        sim = PrefetchingDecodeSimulator(config, router,
                                         ExpertCache(capacity), seed=1)
        return plain, sim.run(TOKENS), sim.prefetcher.stats

    plain, spec, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["plain LRU", percent(plain.hit_rate),
             plain.mean_latency() * 1e3],
            ["speculative prefetch", percent(spec.hit_rate),
             spec.mean_latency() * 1e3]]
    print("\nSpeculative prefetching (decode, 50% cache):")
    print(format_table(["mode", "hit rate", "mean ms/token"], rows))
    print(f"prediction accuracy {percent(stats.accuracy)}, "
          f"wasted prefetches {stats.wasted}")
    assert spec.mean_latency() <= plain.mean_latency() * 1.02
