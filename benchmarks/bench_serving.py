"""Offloaded-serving benchmarks: expert caching under decode-time locality.

Extension territory (the paper's related work: Lina, Fiddler, MoE-Infinity).
Sweeps cache capacity and eviction policy on decode streams whose locality
matches the fine-tuning regimes, showing that (1) skew is what makes small
caches viable and (2) profile-pinned caching beats oblivious LRU.

The live-decode section benchmarks the KV-cached incremental runtime:
``LiveDecodeEngine`` in ``mode="cached"`` (prefill once, one token per
step) against ``mode="reference"`` (full re-forward every token) on a
seeded ``tiny_mistral`` over a prompt-length x generation-length grid.
Every cell is equivalence-checked in the same run — greedy token ids must
be bit-identical between the modes, and routing records must keep flowing
to the locality profiler in both.

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_serving.py \\
        --output BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table, percent
from repro.models import build_model, mixtral_8x7b_sim, nano_moe, tiny_mistral
from repro.routing import SyntheticRouter, UNIFORM_REGIME, WIKITEXT_REGIME
from repro.serving import (DecodeSimulator, ExpertCache, LiveDecodeEngine,
                           ServingConfig, hot_expert_keys)

TOKENS = 150

# Live-decode grid: (prompt_len, num_tokens); (128, 64) is the acceptance
# point — the cached runtime must beat the reference by >= 5x there.
LIVE_CELLS = [
    (32, 16),
    (32, 64),
    (128, 16),
    (128, 64),
]
LIVE_HEADLINE_CELL = (128, 64)
LIVE_MIN_SPEEDUP = 5.0


def run_serving(config, regime, capacity, policy="lru", seed=1):
    router = SyntheticRouter(config, regime, seed=seed)
    pinned = None
    if policy == "pinned":
        profile = router.probability_matrix(8192)
        pinned = hot_expert_keys(profile, max(capacity - config.num_layers, 1))
    cache = ExpertCache(capacity=capacity, policy=policy, pinned=pinned)
    return DecodeSimulator(config, router, cache, seed=seed).run(TOKENS)


def test_cache_capacity_sweep(benchmark):
    """Hit rate and latency vs cache size (Mixtral-scale, WikiText skew)."""
    config = mixtral_8x7b_sim()
    fractions = (0.25, 0.5, 0.75, 1.0)

    def sweep():
        rows = []
        for fraction in fractions:
            capacity = max(int(config.total_experts * fraction), 1)
            metrics = run_serving(config, WIKITEXT_REGIME, capacity)
            rows.append([f"{fraction:.0%}", capacity,
                         percent(metrics.hit_rate),
                         metrics.mean_latency() * 1e3,
                         metrics.p99_latency() * 1e3])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nCache capacity sweep (decode, Mixtral/WikiText):")
    print(format_table(["cache", "experts", "hit rate", "mean ms/token",
                        "p99 ms/token"], rows))
    hit_rates = [float(r[2].rstrip("%")) for r in rows]
    latencies = [r[3] for r in rows]
    assert hit_rates == sorted(hit_rates)
    assert latencies == sorted(latencies, reverse=True)


def test_policy_comparison(benchmark):
    """LRU vs LFU vs profile-pinned at half-capacity."""
    config = mixtral_8x7b_sim()
    capacity = config.total_experts // 2

    def compare():
        return {policy: run_serving(config, WIKITEXT_REGIME, capacity, policy)
                for policy in ("lru", "lfu", "pinned")}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [[policy, percent(m.hit_rate), m.mean_latency() * 1e3]
            for policy, m in results.items()]
    print(f"\nEviction policy comparison (capacity {capacity}/256):")
    print(format_table(["policy", "hit rate", "mean ms/token"], rows))
    assert results["pinned"].hit_rate >= results["lru"].hit_rate - 0.02


def test_skew_is_what_makes_offloading_work(benchmark):
    """Uniform routing defeats the cache; locality saves it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = mixtral_8x7b_sim()
    capacity = config.total_experts // 2
    skewed = run_serving(config, WIKITEXT_REGIME, capacity)
    uniform = run_serving(config, UNIFORM_REGIME, capacity)
    print(f"\nhit rate at 50% capacity: wikitext-skew "
          f"{percent(skewed.hit_rate)}, uniform {percent(uniform.hit_rate)}")
    assert skewed.hit_rate > uniform.hit_rate + 0.05


def test_speculative_prefetch(benchmark):
    """Previous-token speculation hides fetches behind decode compute."""
    from repro.serving import ExpertCache
    from repro.serving.prefetch import PrefetchingDecodeSimulator

    config = mixtral_8x7b_sim()
    capacity = config.total_experts // 2

    def run():
        plain = run_serving(config, WIKITEXT_REGIME, capacity)
        router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
        sim = PrefetchingDecodeSimulator(config, router,
                                         ExpertCache(capacity), seed=1)
        return plain, sim.run(TOKENS), sim.prefetcher.stats

    plain, spec, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["plain LRU", percent(plain.hit_rate),
             plain.mean_latency() * 1e3],
            ["speculative prefetch", percent(spec.hit_rate),
             spec.mean_latency() * 1e3]]
    print("\nSpeculative prefetching (decode, 50% cache):")
    print(format_table(["mode", "hit rate", "mean ms/token"], rows))
    print(f"prediction accuracy {percent(stats.accuracy)}, "
          f"wasted prefetches {stats.wasted}")
    assert spec.mean_latency() <= plain.mean_latency() * 1.02


# --------------------------------------------------------------------- #
# Live decode: KV-cached incremental runtime vs full re-forward
# --------------------------------------------------------------------- #
def _live_model(prompt_len: int, num_tokens: int):
    """A seeded tiny_mistral whose context window fits the cell exactly."""
    return build_model(tiny_mistral(seed=0,
                                    max_seq_len=prompt_len + num_tokens))


def _records_flowing(model) -> bool:
    """The locality profiler's inputs survived the decode: one routing
    record per layer, with per-expert access counts that cover the step."""
    records = model.routing_records()
    if len(records) != model.config.num_layers:
        return False
    counts = [r.access_counts(model.config.num_experts) for r in records]
    return all(c.sum() == records[i].expert_indices.shape[0]
               * model.config.top_k for i, c in enumerate(counts))


def measure_live_cell(prompt_len: int, num_tokens: int,
                      iters: int = 2) -> dict:
    """Cached vs reference decode wall times plus equivalence checks."""
    model = _live_model(prompt_len, num_tokens)
    engine = LiveDecodeEngine(model)
    prompt = np.random.default_rng(5).integers(
        0, model.config.vocab_size, size=(1, prompt_len))

    times = {}
    ids = {}
    flowing = {}
    for mode in ("cached", "reference"):
        best = float("inf")
        for _ in range(iters):
            start = time.perf_counter()
            out = engine.decode(prompt, num_tokens, mode=mode)
            best = min(best, time.perf_counter() - start)
        times[mode] = best
        ids[mode] = out
        flowing[mode] = _records_flowing(model)
    return {
        "prompt_len": prompt_len,
        "num_tokens": num_tokens,
        "cached_ms": times["cached"] * 1e3,
        "reference_ms": times["reference"] * 1e3,
        "speedup": times["reference"] / times["cached"],
        "ids_identical": bool(
            np.array_equal(ids["cached"], ids["reference"])),
        "records_flowing": flowing["cached"] and flowing["reference"],
    }


def test_live_decode_headline_speedup(benchmark):
    """Acceptance point: >= 5x cached-vs-reference decode at (128, 64)."""
    prompt_len, num_tokens = LIVE_HEADLINE_CELL
    result = benchmark.pedantic(
        lambda: measure_live_cell(prompt_len, num_tokens),
        rounds=1, iterations=1)
    print(f"\nlive decode @ prompt {prompt_len} x gen {num_tokens}: "
          f"reference {result['reference_ms']:.0f} ms, "
          f"cached {result['cached_ms']:.1f} ms, "
          f"speedup {result['speedup']:.1f}x")
    assert result["ids_identical"]
    assert result["records_flowing"]
    assert result["speedup"] >= LIVE_MIN_SPEEDUP, result


def test_live_decode_equivalence_all_cells():
    """Greedy ids bit-identical and records flowing at every grid cell."""
    for prompt_len, num_tokens in LIVE_CELLS:
        result = measure_live_cell(prompt_len, num_tokens, iters=1)
        assert result["ids_identical"], (prompt_len, num_tokens)
        assert result["records_flowing"], (prompt_len, num_tokens)


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Live-decode benchmark: cached vs reference modes")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="headline cell only (CI)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if the headline misses "
                             f"{LIVE_MIN_SPEEDUP}x or any cell diverges")
    args = parser.parse_args(argv)

    cells = [LIVE_HEADLINE_CELL] if args.smoke else LIVE_CELLS
    results = [measure_live_cell(*cell) for cell in cells]

    rows = [[f"{r['prompt_len']} x {r['num_tokens']}",
             f"{r['reference_ms']:.0f}",
             f"{r['cached_ms']:.1f}",
             f"{r['speedup']:.1f}x",
             "yes" if r["ids_identical"] else "NO",
             "yes" if r["records_flowing"] else "NO"] for r in results]
    print(format_table(
        ["prompt x gen", "reference (ms)", "cached (ms)", "speedup",
         "ids identical", "records flow"], rows))

    headline = next(r for r in results
                    if (r["prompt_len"], r["num_tokens"])
                    == LIVE_HEADLINE_CELL)
    ok = (headline["speedup"] >= LIVE_MIN_SPEEDUP
          and all(r["ids_identical"] and r["records_flowing"]
                  for r in results))
    payload = {
        "cells": results,
        "headline": {
            "cell": list(LIVE_HEADLINE_CELL),
            "speedup": headline["speedup"],
            "min_required": LIVE_MIN_SPEEDUP,
            "ids_identical": headline["ids_identical"],
            "records_flowing": headline["records_flowing"],
        },
    }
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(f"headline: {headline['speedup']:.1f}x "
          f"(required {LIVE_MIN_SPEEDUP}x) -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
