"""Multi-core expert-parallel executor benchmarks.

Measures fine-tune-step (forward+backward) and batched-decode
(forward-only, ``no_grad``) token throughput of the shared-memory
process-pool executor against the in-process fused dispatch, across
worker counts, plus the equivalence gates that make the parallel path
trustworthy:

* native format must match the in-process path *bit for bit* (the
  workers replay ``fused_swiglu``'s exact op order);
* int8 format must match an in-process model whose expert weights were
  round-tripped through the same quantizer *bit for bit* (absmax
  quantization is a fixed point), gated at ``1e-6`` to absorb future
  kernel reorderings.

The >= 2.5x @ 4 workers speedup gate is only evaluated on hosts with at
least 4 cores; ``speedup_ok`` in the payload is true when the gate
passed or was honestly skipped, and ``gate_evaluated`` records which.

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_parallel.py \\
        --output BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table
from repro.models.moe_block import MoEBlock, fused_dispatch
from repro.nn.quant import quantize_tensor
from repro.nn.tensor import Tensor, no_grad
from repro.parallel import (ProcessPoolExpertExecutor, executor_dispatch,
                            make_executor)

# Workload: ~the issue's suggested scale — 8 experts of 128->512 SwiGLU,
# one step = batch 8 x seq 64 = 512 token rows, top-2 routing.
HIDDEN = 128
FFN = 512
NUM_EXPERTS = 8
TOP_K = 2
ROWS = 512

WORKER_COUNTS = (1, 2, 4, 8)
SPEEDUP_GATE = 2.5
GATE_WORKERS = 4
MIN_CORES_FOR_GATE = 4
NATIVE_TOLERANCE = 1e-12
INT8_TOLERANCE = 1e-6


def build_block(hidden=HIDDEN, ffn=FFN, experts=NUM_EXPERTS, top_k=TOP_K,
                seed=0):
    return MoEBlock(hidden, ffn, experts, top_k,
                    rng=np.random.default_rng(seed))


def _step(block, tokens_data, executor, train):
    tokens = Tensor(tokens_data, requires_grad=train)
    gate_out = block.gate(tokens)
    if executor is None:
        out = fused_dispatch(block.experts, tokens, gate_out)
    else:
        out = executor_dispatch(executor, 0, block.experts, tokens,
                                gate_out)
    if train:
        block.zero_grad()
        (out * out).sum().backward()
    return out


def measure_throughput(num_workers, rows=ROWS, iters=3, train=True,
                       weight_format="native"):
    """Best-of-``iters`` tokens/s for one dispatch step.

    ``num_workers is None`` measures the in-process fused dispatch (the
    serial baseline every speedup is relative to).
    """
    block = build_block()
    tokens_data = np.random.default_rng(1).normal(size=(rows, HIDDEN))
    executor = None
    if num_workers is not None:
        executor = make_executor(num_workers)
        executor.bind(block, weight_format=weight_format)
    try:
        _step(block, tokens_data, executor, train)  # warm the pool
        best = float("inf")
        for _ in range(iters):
            start = time.perf_counter()
            if train:
                _step(block, tokens_data, executor, train=True)
            else:
                with no_grad():
                    _step(block, tokens_data, executor, train=False)
            best = min(best, time.perf_counter() - start)
    finally:
        if executor is not None:
            executor.close()
    return rows / best


def equivalence_native(num_workers=2):
    """Max |parallel - in-process| over output, token grads, and every
    weight grad, for plain (non-adapted) experts.  Expected exactly 0."""
    block = build_block(hidden=32, ffn=64, experts=4, seed=3)
    tokens_data = np.random.default_rng(4).normal(size=(48, 32))

    def run(executor):
        tokens = Tensor(tokens_data.copy(), requires_grad=True)
        gate_out = block.gate(tokens)
        if executor is None:
            out = fused_dispatch(block.experts, tokens, gate_out)
        else:
            out = executor_dispatch(executor, 0, block.experts, tokens,
                                    gate_out)
        block.zero_grad()
        (out * out).sum().backward()
        grads = [p.grad.copy() for _, p in block.named_parameters()
                 if p.grad is not None]
        return out.data.copy(), tokens.grad.copy(), grads

    ref = run(None)
    with ProcessPoolExpertExecutor(num_workers) as executor:
        executor.bind(block)
        got = run(executor)
    diffs = [np.abs(got[0] - ref[0]).max(), np.abs(got[1] - ref[1]).max()]
    diffs += [np.abs(g - r).max() for g, r in zip(got[2], ref[2])]
    return float(max(diffs))


def equivalence_int8(num_workers=2):
    """Max |int8 executor - in-process| after round-tripping the model's
    expert weights through the quantizer.  Absmax per-channel quantization
    is a fixed point (the absmax element always maps to code 127), so the
    executor's store rebuilds identical values — expected exactly 0."""
    block = build_block(hidden=32, ffn=64, experts=4, seed=5)
    with ProcessPoolExpertExecutor(num_workers) as executor:
        executor.bind(block, weight_format="int8")
        for expert in block.experts:
            for proj in (expert.w_gate, expert.w_up, expert.w_down):
                proj.weight.data = quantize_tensor(
                    proj.weight.data).dequantize()
        tokens_data = np.random.default_rng(6).normal(size=(48, 32))
        with no_grad():
            tokens = Tensor(tokens_data)
            gate_out = block.gate(tokens)
            got = executor_dispatch(executor, 0, block.experts, tokens,
                                    gate_out)
            ref = fused_dispatch(block.experts, tokens, gate_out)
    return float(np.abs(got.data - ref.data).max())


def int8_roundtrip_error():
    """Worst per-channel relative quantization error across one block's
    expert weights (reported, not gated — accuracy, not equivalence)."""
    block = build_block(seed=7)
    worst = 0.0
    for expert in block.experts:
        for proj in (expert.w_gate, expert.w_up, expert.w_down):
            w = proj.weight.data
            err = np.abs(quantize_tensor(w).dequantize() - w).max()
            worst = max(worst, float(err / np.abs(w).max()))
    return worst


# --------------------------------------------------------------------- #
# pytest entry points (CI runs -k equivalence on this file)
# --------------------------------------------------------------------- #
def test_equivalence_native_is_bit_exact():
    assert equivalence_native() <= NATIVE_TOLERANCE


def test_equivalence_int8_roundtrip_is_bit_exact():
    assert equivalence_int8() <= INT8_TOLERANCE


def test_throughput_smoke(benchmark):
    """One 2-worker step runs end to end and yields a finite rate."""
    rate = benchmark.pedantic(
        lambda: measure_throughput(2, rows=128, iters=1),
        rounds=1, iterations=1)
    assert rate > 0


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Expert-parallel executor benchmark")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--workers", type=int, default=None,
                        help="measure only this worker count (with the "
                             "serial baseline)")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, single iteration (CI)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any gate fails")
    args = parser.parse_args(argv)

    rows = 128 if args.smoke else ROWS
    iters = 1 if args.smoke else 3
    counts = [args.workers] if args.workers else list(WORKER_COUNTS)

    equiv_native = equivalence_native()
    equiv_int8 = equivalence_int8()
    int8_err = int8_roundtrip_error()

    serial_train = measure_throughput(None, rows=rows, iters=iters)
    serial_decode = measure_throughput(None, rows=rows, iters=iters,
                                       train=False)
    measurements = []
    for n in counts:
        measurements.append({
            "workers": n,
            "train_tokens_per_s": measure_throughput(n, rows=rows,
                                                     iters=iters),
            "decode_tokens_per_s": measure_throughput(
                n, rows=rows, iters=iters, train=False,
                weight_format="int8"),
        })
    for m in measurements:
        m["train_speedup"] = m["train_tokens_per_s"] / serial_train
        m["decode_speedup"] = m["decode_tokens_per_s"] / serial_decode

    table_rows = [["serial", f"{serial_train:.0f}", "1.00x",
                   f"{serial_decode:.0f}", "1.00x"]]
    table_rows += [[str(m["workers"]), f"{m['train_tokens_per_s']:.0f}",
                    f"{m['train_speedup']:.2f}x",
                    f"{m['decode_tokens_per_s']:.0f}",
                    f"{m['decode_speedup']:.2f}x"] for m in measurements]
    print(format_table(["workers", "train tok/s", "speedup",
                        "decode tok/s (int8)", "speedup"], table_rows))

    cores = os.cpu_count() or 1
    gate_cell = next((m for m in measurements
                      if m["workers"] == GATE_WORKERS), None)
    gate_evaluated = cores >= MIN_CORES_FOR_GATE and gate_cell is not None
    speedup_ok = (not gate_evaluated
                  or gate_cell["train_speedup"] >= SPEEDUP_GATE)
    equiv_ok = (equiv_native <= NATIVE_TOLERANCE
                and equiv_int8 <= INT8_TOLERANCE)

    payload = {
        "workload": {"hidden": HIDDEN, "ffn": FFN,
                     "num_experts": NUM_EXPERTS, "top_k": TOP_K,
                     "rows": rows, "iters": iters},
        "cores": cores,
        "serial": {"train_tokens_per_s": serial_train,
                   "decode_tokens_per_s": serial_decode},
        "measurements": measurements,
        "int8_roundtrip_rel_error": int8_err,
        "headline": {
            "speedup_ok": bool(speedup_ok),
            "gate_evaluated": bool(gate_evaluated),
            "speedup_gate": SPEEDUP_GATE,
            "gate_workers": GATE_WORKERS,
            "equiv_native_max": equiv_native,
            "native_tolerance": NATIVE_TOLERANCE,
            "equiv_int8_max": equiv_int8,
            "int8_tolerance": INT8_TOLERANCE,
        },
    }
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")

    gate_note = (f"{gate_cell['train_speedup']:.2f}x @ {GATE_WORKERS} "
                 f"workers (gate {SPEEDUP_GATE}x)" if gate_evaluated
                 else f"skipped ({cores} cores < {MIN_CORES_FOR_GATE})")
    print(f"equivalence: native {equiv_native:.3g} "
          f"(<= {NATIVE_TOLERANCE:g}), int8 {equiv_int8:.3g} "
          f"(<= {INT8_TOLERANCE:g}); int8 roundtrip rel err "
          f"{int8_err:.2e}")
    print(f"speedup gate: {gate_note} -> "
          f"{'PASS' if speedup_ok and equiv_ok else 'MISS'}")
    return 1 if (args.strict and not (speedup_ok and equiv_ok)) else 0


if __name__ == "__main__":
    raise SystemExit(main())
