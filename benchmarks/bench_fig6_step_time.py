"""Fig. 6 — average time per fine-tuning step under each strategy.

Paper's measured shape: conventional expert parallelism is slowed by its
per-block status synchronization; VELA's master-worker framework plus
locality-aware placement accelerates each step by 20.6 % (Mixtral/Alpaca)
to 28.2 % (Mixtral/WikiText) versus EP.
"""

import pytest

from conftest import comparison
from repro.bench.report import format_table, percent


def print_cell(exp):
    print(f"\nFig. 6 — average step time, {exp.workload_name}:")
    rows = [[name, t] for name, t in exp.step_times().items()]
    print(format_table(["strategy", "avg step time (s)"], rows))
    print(f"vela vs EP: -{percent(exp.time_reduction_vs_ep())}")


def check_shape(exp, low, high):
    times = exp.step_times()
    assert times["vela"] == min(times.values())
    red = exp.time_reduction_vs_ep()
    assert low < red < high, f"time reduction {red:.3f} outside [{low}, {high}]"


def test_fig6a_mixtral_wikitext(benchmark, mixtral_wikitext):
    exp = benchmark.pedantic(lambda: mixtral_wikitext, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.18, 0.40)


def test_fig6b_mixtral_alpaca(benchmark, mixtral_alpaca):
    exp = benchmark.pedantic(lambda: mixtral_alpaca, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.12, 0.32)


def test_fig6c_gritlm_wikitext(benchmark, gritlm_wikitext):
    exp = benchmark.pedantic(lambda: gritlm_wikitext, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.15, 0.42)


def test_fig6d_gritlm_alpaca(benchmark, gritlm_alpaca):
    exp = benchmark.pedantic(lambda: gritlm_alpaca, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.10, 0.35)


def test_ep_sync_overhead_is_the_framework_gap(benchmark, mixtral_wikitext):
    """The paper attributes EP's slowness to synchronized all-to-all: the
    sync time must be a material share of EP's step."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ep = mixtral_wikitext.runs["expert_parallel"]
    sync = sum(s.sync_time for s in ep.steps) / ep.num_steps
    assert sync > 0.1  # hundreds of ms per step across 64 block-passes

    # Master-worker framework pays no sync at all.
    seq = mixtral_wikitext.runs["sequential"]
    assert all(s.sync_time == 0 for s in seq.steps)


def test_time_reduction_exceeds_traffic_reduction_wikitext(benchmark,
                                                           mixtral_wikitext):
    """Paper: the 28.2 % speedup is *greater* than the 25 % traffic cut
    "due to the architectural difference" (no sync in master-worker)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert mixtral_wikitext.time_reduction_vs_ep() > \
        mixtral_wikitext.traffic_reduction_vs_ep()
