"""Fig. 6 — average time per fine-tuning step under each strategy.

Paper's measured shape: conventional expert parallelism is slowed by its
per-block status synchronization; VELA's master-worker framework plus
locality-aware placement accelerates each step by 20.6 % (Mixtral/Alpaca)
to 28.2 % (Mixtral/WikiText) versus EP.

Run standalone with ``--trace-out`` to export the step timeline behind one
cell as a Chrome-trace JSON (load it at ``chrome://tracing`` or
https://ui.perfetto.dev): both engines replay the cell with telemetry on,
every per-step span-category sum is verified against the ``StepMetrics``
aggregates to 1e-9, and the two engines land side by side as separate
processes in the viewer::

    PYTHONPATH=src python benchmarks/bench_fig6_step_time.py \\
        --trace-out BENCH_fig6_trace.json
"""

import argparse
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import comparison
from repro.bench.report import format_table, percent


def print_cell(exp):
    print(f"\nFig. 6 — average step time, {exp.workload_name}:")
    rows = [[name, t] for name, t in exp.step_times().items()]
    print(format_table(["strategy", "avg step time (s)"], rows))
    print(f"vela vs EP: -{percent(exp.time_reduction_vs_ep())}")


def check_shape(exp, low, high):
    times = exp.step_times()
    assert times["vela"] == min(times.values())
    red = exp.time_reduction_vs_ep()
    assert low < red < high, f"time reduction {red:.3f} outside [{low}, {high}]"


def test_fig6a_mixtral_wikitext(benchmark, mixtral_wikitext):
    exp = benchmark.pedantic(lambda: mixtral_wikitext, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.18, 0.40)


def test_fig6b_mixtral_alpaca(benchmark, mixtral_alpaca):
    exp = benchmark.pedantic(lambda: mixtral_alpaca, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.12, 0.32)


def test_fig6c_gritlm_wikitext(benchmark, gritlm_wikitext):
    exp = benchmark.pedantic(lambda: gritlm_wikitext, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.15, 0.42)


def test_fig6d_gritlm_alpaca(benchmark, gritlm_alpaca):
    exp = benchmark.pedantic(lambda: gritlm_alpaca, rounds=1, iterations=1)
    print_cell(exp)
    check_shape(exp, 0.10, 0.35)


def test_ep_sync_overhead_is_the_framework_gap(benchmark, mixtral_wikitext):
    """The paper attributes EP's slowness to synchronized all-to-all: the
    sync time must be a material share of EP's step."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ep = mixtral_wikitext.runs["expert_parallel"]
    sync = sum(s.sync_time for s in ep.steps) / ep.num_steps
    assert sync > 0.1  # hundreds of ms per step across 64 block-passes

    # Master-worker framework pays no sync at all.
    seq = mixtral_wikitext.runs["sequential"]
    assert all(s.sync_time == 0 for s in seq.steps)


def test_time_reduction_exceeds_traffic_reduction_wikitext(benchmark,
                                                           mixtral_wikitext):
    """Paper: the 28.2 % speedup is *greater* than the 25 % traffic cut
    "due to the architectural difference" (no sync in master-worker)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert mixtral_wikitext.time_reduction_vs_ep() > \
        mixtral_wikitext.traffic_reduction_vs_ep()


# --------------------------------------------------------------------- #
# standalone runner: Chrome-trace export with span-sum verification
# --------------------------------------------------------------------- #
SPAN_SUM_TOL = 1e-9


def _step_category_sums(spans):
    """``{step: {category: summed duration}}`` plus per-step comm labels."""
    by_step = {}
    for span in spans:
        step = span.labels["step"]
        cats = by_step.setdefault(step, {})
        cats[span.category] = cats.get(span.category, 0.0) + span.duration
        cats["_total"] = cats.get("_total", 0.0) + span.duration
        cats["_comm_labels"] = (cats.get("_comm_labels", 0.0)
                                + span.labels.get("comm_s", 0.0))
    return by_step


def verify_span_sums(telemetry, run, engine_name: str) -> float:
    """Check per-step span sums against StepMetrics; returns the worst gap.

    For both engines the step's spans tile ``total_time`` exactly.  Comm
    time is the ``comm_s`` labels of the master-worker fork-joins and the
    ``all_to_all`` category for EP; EP's ``sync``/``allreduce`` categories
    must likewise match ``sync_time``/``allreduce_time``.
    """
    sums = _step_category_sums(telemetry.spans)
    worst = 0.0
    for metrics in run.steps:
        cats = sums[metrics.step]
        checks = [(cats["_total"], metrics.total_time, "total")]
        if engine_name == "expert_parallel":
            checks += [
                (cats.get("all_to_all", 0.0), metrics.comm_time, "comm"),
                (cats.get("sync", 0.0), metrics.sync_time, "sync"),
                (cats.get("allreduce", 0.0), metrics.allreduce_time,
                 "allreduce"),
            ]
        else:
            checks.append((cats["_comm_labels"], metrics.comm_time, "comm"))
        for got, want, what in checks:
            gap = abs(got - want)
            worst = max(worst, gap)
            if gap >= SPAN_SUM_TOL:
                raise AssertionError(
                    f"{engine_name} step {metrics.step} {what}: span sum "
                    f"{got!r} != StepMetrics {want!r} (|gap| {gap:.3e})")
    return worst


def export_fig6_trace(model: str, dataset: str, steps: int, trace_out: Path,
                      csv_out=None, show_summary: bool = False) -> dict:
    """Replay one Fig. 6 cell with telemetry and export the Chrome trace."""
    from repro.bench.workloads import paper_workload
    from repro.core.baselines import make_strategy
    from repro.placement.base import PlacementProblem
    from repro.runtime.engine import (ExpertParallelEngine,
                                      MasterWorkerEngine)
    from repro.telemetry import Telemetry, write_chrome_trace, write_csv

    workload = paper_workload(model, dataset, seed=1)
    cfg = workload.config
    trace = workload.trace(steps)
    problem = PlacementProblem(config=cfg.model, topology=cfg.topology,
                               probability_matrix=workload.probability_matrix,
                               tokens_per_step=cfg.tokens_per_step,
                               capacities=cfg.worker_capacities())

    tel_mw, tel_ep = Telemetry(), Telemetry()
    mw = MasterWorkerEngine(cfg.model, cfg.topology,
                            make_strategy("vela").place(problem),
                            cfg.tokens_per_step, cfg.seq_len,
                            lora_rank=cfg.lora_rank, strategy_name="vela",
                            telemetry=tel_mw)
    ep = ExpertParallelEngine(cfg.model, cfg.topology,
                              make_strategy("expert_parallel").place(problem),
                              cfg.tokens_per_step, cfg.seq_len,
                              lora_rank=cfg.lora_rank, telemetry=tel_ep)
    run_mw = mw.run_trace(trace)
    run_ep = ep.run_trace(trace)

    worst = max(verify_span_sums(tel_mw, run_mw, "vela"),
                verify_span_sums(tel_ep, run_ep, "expert_parallel"))
    write_chrome_trace(trace_out, tel_mw.registry, tel_ep.registry,
                       names=[f"vela master-worker ({workload.name})",
                              f"expert parallel ({workload.name})"])
    if csv_out is not None:
        write_csv(csv_out, tel_mw.registry)
    if show_summary:
        print("vela master-worker:")
        print(tel_mw.summary())
        print("\nexpert parallel:")
        print(tel_ep.summary())
    return {
        "cell": workload.name,
        "steps": steps,
        "spans": len(tel_mw.spans) + len(tel_ep.spans),
        "worst_gap": worst,
        "vela_avg_step_s": run_mw.avg_step_time(),
        "ep_avg_step_s": run_ep.avg_step_time(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-out", type=Path, required=True,
                        help="write the Chrome-trace JSON to this path")
    parser.add_argument("--csv-out", type=Path, default=None,
                        help="also write the master-worker registry as CSV")
    parser.add_argument("--model", default="mixtral",
                        choices=("mixtral", "gritlm"))
    parser.add_argument("--dataset", default="wikitext",
                        choices=("wikitext", "alpaca"))
    parser.add_argument("--steps", type=int, default=12,
                        help="trace steps to replay and export")
    parser.add_argument("--summary", action="store_true",
                        help="print the per-engine summary tables")
    args = parser.parse_args(argv)

    result = export_fig6_trace(args.model, args.dataset, args.steps,
                               args.trace_out, csv_out=args.csv_out,
                               show_summary=args.summary)
    print(f"wrote {args.trace_out}: {result['spans']} spans over "
          f"{result['steps']} steps of {result['cell']}")
    print(f"span sums vs StepMetrics: worst gap {result['worst_gap']:.3e} "
          f"(tolerance {SPAN_SUM_TOL:.0e})")
    print(f"avg step: vela {result['vela_avg_step_s']:.3f}s, "
          f"EP {result['ep_avg_step_s']:.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
