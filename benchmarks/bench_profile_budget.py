"""Profiling-budget study: how many tokens before the placement converges?

The paper's pre-fine-tuning measurement pass has a cost the evaluation never
quantifies.  This bench sweeps the budget and reports placement regret
(objective under the *true* profile of the placement planned from the
estimate), answering "how long must the profiling pass be?".
"""

import numpy as np
import pytest

from repro.bench.report import format_table, percent
from repro.cluster import ExpertMemoryModel, paper_cluster
from repro.models import mixtral_8x7b_sim
from repro.placement import PlacementProblem
from repro.routing import (SyntheticRouter, WIKITEXT_REGIME,
                           profile_budget_study, standard_error)


def test_profile_budget_sweep(benchmark):
    config = mixtral_8x7b_sim()
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
    template = PlacementProblem(
        config=config, topology=topology,
        probability_matrix=router.probability_matrix(1024),
        tokens_per_step=1920,
        capacities=ExpertMemoryModel().capacities(topology, config))
    budgets = [128, 512, 2048, 8192, 32768]
    points = benchmark.pedantic(
        profile_budget_study, (router, template, budgets),
        {"trials": 3, "seed": 0}, rounds=1, iterations=1)

    rows = []
    for point in points:
        se = standard_error(
            np.full((1, 1), 0.25), point.profile_tokens)[0, 0]
        rows.append([point.profile_tokens, point.mean_objective * 1e3,
                     percent(max(point.mean_regret, 0)), f"{se:.3f}"])
    print("\nProfiling-budget sweep (Mixtral/WikiText, regret vs true "
          "profile):")
    print(format_table(["profile tokens", "objective (ms)", "regret",
                        "typical SE of P"], rows))

    regrets = [p.mean_regret for p in points]
    # More profiling can't hurt (allowing sampling noise at adjacent sizes).
    assert regrets[-1] <= regrets[0] + 1e-9
    # The paper's default (8192 tokens) is comfortably converged.
    assert regrets[3] < 0.05


def test_small_budget_placement_still_beats_oblivious(benchmark):
    """Even a 128-token profile beats locality-oblivious placement."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.placement import (LocalityAwarePlacement, SequentialPlacement,
                                 expected_step_comm_time)

    config = mixtral_8x7b_sim()
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
    capacities = ExpertMemoryModel().capacities(topology, config)
    truth = router.probability_matrix(100_000, seed=77)
    true_problem = PlacementProblem(config=config, topology=topology,
                                    probability_matrix=truth,
                                    tokens_per_step=1920,
                                    capacities=capacities)
    estimate = router.probability_matrix(128, seed=5)
    est_problem = PlacementProblem(config=config, topology=topology,
                                   probability_matrix=estimate,
                                   tokens_per_step=1920,
                                   capacities=capacities)
    vela_from_tiny_profile = expected_step_comm_time(
        LocalityAwarePlacement().place(est_problem), true_problem)
    oblivious = expected_step_comm_time(
        SequentialPlacement().place(true_problem), true_problem)
    print(f"\n128-token-profile vela: {vela_from_tiny_profile * 1e3:.1f} ms; "
          f"sequential: {oblivious * 1e3:.1f} ms")
    assert vela_from_tiny_profile < oblivious


def test_bandwidth_probe_noise(benchmark):
    """How much iperf-style measurement noise can the LP inputs absorb?"""
    from repro.cluster import ExpertMemoryModel, bandwidth_noise_study

    config = mixtral_8x7b_sim()
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
    problem = PlacementProblem(
        config=config, topology=topology,
        probability_matrix=router.probability_matrix(8192),
        tokens_per_step=1920,
        capacities=ExpertMemoryModel().capacities(topology, config))
    sigmas = [0.0, 0.1, 0.3, 0.6, 1.0]
    points = benchmark.pedantic(bandwidth_noise_study,
                                (problem, sigmas),
                                {"samples": 5, "trials": 3, "seed": 0},
                                rounds=1, iterations=1)
    rows = [[p.sigma, p.mean_objective * 1e3, percent(max(p.regret, 0))]
            for p in points]
    print("\nBandwidth-probe noise sweep (placement regret vs true B_n):")
    print(format_table(["probe sigma", "objective (ms)", "regret"], rows))
    assert points[0].regret == pytest.approx(0.0, abs=1e-9)
    # The paper's 15.6x bandwidth gap dwarfs realistic probe noise: even at
    # sigma=0.3 the placement stays near-optimal.
    assert points[2].regret < 0.10
