"""Fig. 7 — expert access heatmaps of Mixtral on WikiText vs Alpaca.

Paper's shape: WikiText access is concentrated ("large white areas" — a few
dominant experts per layer), Alpaca is more diffuse ("numerous light blue
blocks"), and the two datasets prefer *different* experts — the structural
reason VELA gains more on WikiText.
"""

import numpy as np
import pytest

from repro.bench import run_heatmap_experiment
from repro.bench.report import heatmap, percent

_cache = {}


def cell(dataset):
    if dataset not in _cache:
        _cache[dataset] = run_heatmap_experiment("mixtral", dataset, seed=1)
    return _cache[dataset]


def test_fig7a_wikitext_heatmap(benchmark):
    exp = benchmark.pedantic(lambda: cell("wikitext"), rounds=1, iterations=1)
    print(f"\nFig. 7(a) — access heatmap, {exp.workload_name} "
          f"(experts x layers):")
    print(heatmap(exp.probability_matrix.T, row_label="e", col_label="layer",
                  max_value=1.0))
    print(f"top-2 share: {percent(exp.hot_expert_share(2))}, "
          f"normalized entropy: {exp.concentration():.3f}")
    # Concentrated: hot experts capture well above the uniform share (0.25).
    assert exp.hot_expert_share(2) > 0.45
    # Some experts are near-always chosen, like the paper's white cells.
    assert exp.probability_matrix.max() > 0.75


def test_fig7b_alpaca_heatmap(benchmark):
    exp = benchmark.pedantic(lambda: cell("alpaca"), rounds=1, iterations=1)
    print(f"\nFig. 7(b) — access heatmap, {exp.workload_name} "
          f"(experts x layers):")
    print(heatmap(exp.probability_matrix.T, row_label="e", col_label="layer",
                  max_value=1.0))
    print(f"top-2 share: {percent(exp.hot_expert_share(2))}, "
          f"normalized entropy: {exp.concentration():.3f}")
    assert exp.hot_expert_share(2) < cell("wikitext").hot_expert_share(2)
    assert exp.concentration() > cell("wikitext").concentration()


def test_datasets_prefer_different_experts(benchmark):
    """Paper: "the last expert in the third MoE block is extremely popular
    in WikiText, but rarely selected in Alpaca" — dataset-dependent expert
    preferences.  Check that per-layer rankings genuinely differ."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wiki = cell("wikitext").probability_matrix
    alpaca = cell("alpaca").probability_matrix
    disagreements = sum(
        int(np.argmax(wiki[layer]) != np.argmax(alpaca[layer]))
        for layer in range(wiki.shape[0]))
    assert disagreements > wiki.shape[0] // 2


def test_every_layer_has_hot_and_cold_experts(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wiki = cell("wikitext").probability_matrix
    assert np.all(wiki.max(axis=1) > 2 * wiki.min(axis=1))
