"""Benchmarks for the reproduction's extensions beyond the paper.

* **Framework x placement factorial** — runs both runtimes under both
  placements, decomposing VELA's win: under all-to-all expert parallelism
  the *sources* are uniformly sharded, so locality placement cannot reduce
  cross-node traffic — the master-worker framework is what converts
  locality into savings.
* **Adaptive re-placement** on a dataset-switching curriculum.
* **Expert replication** into spare capacity.
* **NIC contention** — how optimistic the paper's independent-link model is.
* **Activation compression** — int8/int4 transfers vs fp16.
* **Failure recovery** — degraded-mode cost of losing each worker.
"""

import numpy as np
import pytest

from repro import VelaConfig, VelaSystem
from repro.bench import paper_workload
from repro.bench.report import format_table, percent
from repro.comm import FP16, INT4, INT8, apply_scheme, quantization_error
from repro.core import (AdaptivePlacementController, FailureRecoveryPlanner,
                        phase_switch_trace)
from repro.placement import (ExpertParallelPlacement, LocalityAwarePlacement,
                             PlacementProblem, ReplicationStrategy,
                             SequentialPlacement)
from repro.routing import ALPACA_REGIME, SyntheticRouter, WIKITEXT_REGIME
from repro.runtime import (EventDrivenMasterWorker, ExpertParallelEngine,
                           MasterWorkerEngine, contention_penalty)

STEPS = 30


@pytest.fixture(scope="module")
def workload():
    return paper_workload("mixtral", "wikitext", seed=1)


@pytest.fixture(scope="module")
def problem(workload):
    config = workload.config
    return PlacementProblem(config=config.model, topology=config.topology,
                            probability_matrix=workload.probability_matrix,
                            tokens_per_step=config.tokens_per_step,
                            capacities=config.worker_capacities())


def test_framework_placement_factorial(benchmark, workload, problem):
    """2x2: {expert-parallel, master-worker} x {sequential, vela}."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = workload.config
    trace = workload.trace(STEPS)
    placements = {"sequential": SequentialPlacement().place(problem),
                  "vela": LocalityAwarePlacement().place(problem)}
    rows = []
    traffic = {}
    for framework in ("expert-parallel", "master-worker"):
        for pname, placement in placements.items():
            if framework == "expert-parallel":
                engine = ExpertParallelEngine(
                    config.model, config.topology, placement,
                    config.tokens_per_step, config.seq_len)
            else:
                engine = MasterWorkerEngine(
                    config.model, config.topology, placement,
                    config.tokens_per_step, config.seq_len)
            run = engine.run_trace(trace)
            traffic[(framework, pname)] = run.avg_external_traffic_per_node()
            rows.append([framework, pname, run.avg_step_time(),
                         run.avg_external_traffic_per_node() / 1e6])
    print("\nFramework x placement factorial:")
    print(format_table(["framework", "placement", "step time (s)",
                        "MB/node/step"], rows))
    # Locality placement is useless for traffic under all-to-all (uniform
    # sources), but decisive under master-worker.
    ep_gain = 1 - traffic[("expert-parallel", "vela")] / \
        traffic[("expert-parallel", "sequential")]
    mw_gain = 1 - traffic[("master-worker", "vela")] / \
        traffic[("master-worker", "sequential")]
    print(f"traffic gain from vela placement: EP {percent(ep_gain)}, "
          f"master-worker {percent(mw_gain)}")
    assert abs(ep_gain) < 0.05
    assert mw_gain > 0.15


def test_adaptive_on_curriculum(benchmark, workload):
    """Dataset switch mid-run: adaptive VELA recovers, static goes stale."""
    config = workload.config
    trace = phase_switch_trace(config.model,
                               [WIKITEXT_REGIME, ALPACA_REGIME],
                               config.tokens_per_step, steps_per_phase=40,
                               seed=1)
    profile = workload.probability_matrix

    def run():
        system = VelaSystem(config)
        static = system.simulate(trace, system.place(profile))
        controller = AdaptivePlacementController(config, check_interval=10,
                                                 drift_threshold=0.12,
                                                 window=10)
        adaptive = controller.run(trace, profile)
        return static, adaptive

    static, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["static vela", static.avg_step_time(),
             static.avg_external_traffic_per_node() / 1e6, 0],
            ["adaptive vela", adaptive.metrics.avg_step_time(),
             adaptive.metrics.avg_external_traffic_per_node() / 1e6,
             adaptive.num_replacements]]
    print("\nAdaptive re-placement on a wikitext->alpaca curriculum:")
    print(format_table(["system", "step time (s)", "MB/node/step",
                        "re-placements"], rows))
    for event in adaptive.events:
        print(f"  step {event.step}: drift {event.drift:.3f}, moved "
              f"{event.experts_moved} experts in {event.migration_time_s:.1f}s")
    assert adaptive.num_replacements >= 1
    # Post-switch, adaptive must carry less traffic than static.
    tail_static = static.external_traffic_series()[-20:].mean()
    tail_adaptive = adaptive.metrics.external_traffic_series()[-20:].mean()
    assert tail_adaptive < tail_static


def test_replication_uses_spare_capacity(benchmark, workload):
    config = workload.config
    # Give the cluster slack so replication has room.
    capacities = [20, 55, 55, 55, 55, 55]
    problem = PlacementProblem(config=config.model, topology=config.topology,
                               probability_matrix=workload.probability_matrix,
                               tokens_per_step=config.tokens_per_step,
                               capacities=capacities)
    report = benchmark.pedantic(ReplicationStrategy(max_replicas=40).solve,
                                (problem,), rounds=1, iterations=1)
    print(f"\nReplication: {report.replicas_added} replicas, Eq.(7) "
          f"{report.base_objective * 1e3:.1f} -> "
          f"{report.replicated_objective * 1e3:.1f} ms "
          f"({percent(report.improvement)} better)")
    sync = report.placement.replica_sync_bytes(config.model) / 1e6
    print(f"adapter sync cost: {sync:.1f} MB/step across replica holders")
    assert report.replicated_objective <= report.base_objective
    assert report.improvement > 0


def test_nic_contention_penalty(benchmark, workload, problem):
    """How optimistic is Eq. (7)'s independent-links assumption?"""
    config = workload.config
    trace = workload.trace(2)
    counts = trace.step_counts(0)
    rows = []
    for name, strategy in [("sequential", SequentialPlacement()),
                           ("vela", LocalityAwarePlacement())]:
        placement = strategy.place(problem)
        penalty = contention_penalty(config.model, config.topology, placement,
                                     counts, config.tokens_per_step,
                                     config.seq_len)
        rows.append([name, percent(penalty)])
    print("\nMaster NIC/PCIe contention penalty (vs independent links):")
    print(format_table(["placement", "step-time penalty"], rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    penalties = [float(r[1].rstrip("%")) for r in rows]
    assert all(p >= 0 for p in penalties)
    # Ordering between strategies is preserved even under contention.
    vela_pl = LocalityAwarePlacement().place(problem)
    seq_pl = SequentialPlacement().place(problem)
    t_vela = EventDrivenMasterWorker(config.model, config.topology, vela_pl,
                                     config.tokens_per_step, config.seq_len,
                                     nic_contention=True).run_step(counts)
    t_seq = EventDrivenMasterWorker(config.model, config.topology, seq_pl,
                                    config.tokens_per_step, config.seq_len,
                                    nic_contention=True).run_step(counts)
    assert t_vela.total_time < t_seq.total_time


def test_compression_sweep(benchmark, workload):
    """int8/int4 activation transfers stack with locality placement."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = workload.config
    trace = workload.trace(10)
    rng = np.random.default_rng(0)
    activations = rng.normal(size=(256, 128))
    rows = []
    for scheme in (FP16, INT8, INT4):
        model = apply_scheme(config.model, scheme)
        problem = PlacementProblem(
            config=model, topology=config.topology,
            probability_matrix=workload.probability_matrix,
            tokens_per_step=config.tokens_per_step,
            capacities=config.worker_capacities())
        placement = LocalityAwarePlacement().place(problem)
        run = MasterWorkerEngine(model, config.topology, placement,
                                 config.tokens_per_step,
                                 config.seq_len).run_trace(trace)
        rows.append([scheme.name, run.avg_external_traffic_per_node() / 1e6,
                     run.avg_step_time(),
                     f"{quantization_error(activations, scheme):.4f}"])
    print("\nActivation compression sweep (with vela placement):")
    print(format_table(["scheme", "MB/node/step", "step time (s)",
                        "rel. quantization error"], rows))
    traffic = [r[1] for r in rows]
    assert traffic[1] == pytest.approx(traffic[0] / 2, rel=0.01)
    assert traffic[2] == pytest.approx(traffic[0] / 4, rel=0.01)


def test_failure_recovery_survey(benchmark, workload):
    """Single-worker failures: restore cost and degraded-mode slowdown."""
    # Capacities provisioned for fault tolerance: losing any worker still
    # leaves >= 256 slots for the experts.
    config = VelaConfig(model=workload.config.model,
                        topology=workload.config.topology,
                        capacities=[20, 60, 60, 60, 60, 60])
    system = VelaSystem(config)
    placement = system.place(workload.probability_matrix)
    planner = FailureRecoveryPlanner(config)
    plans = benchmark.pedantic(planner.survey,
                               (placement, workload.probability_matrix),
                               rounds=1, iterations=1)
    rows = [[p.failed_worker, p.experts_restored, p.restore_time_s,
             percent(p.slowdown)] for p in plans]
    print("\nFailure recovery survey (vela placement, slack capacity):")
    print(format_table(["failed worker", "experts moved", "restore (s)",
                        "comm slowdown"], rows))
    assert len(plans) == 5  # every non-master worker is survivable
    assert all(p.slowdown >= -1e-9 for p in plans)


def test_backward_overlap(benchmark, workload, problem):
    """Pipelining backward expert exchanges behind the master's chain."""
    from repro.runtime import OverlappedMasterWorkerEngine, overlap_speedup

    config = workload.config
    trace = workload.trace(10)
    rows = []
    for name, strategy in [("sequential", SequentialPlacement()),
                           ("vela", LocalityAwarePlacement())]:
        placement = strategy.place(problem)
        speedup = overlap_speedup(config.model, config.topology, placement,
                                  trace, config.seq_len, max_steps=10)
        rows.append([name, percent(speedup)])
    print("\nBackward comm/compute overlap (vs serialized engine):")
    print(format_table(["placement", "step-time saving"], rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    savings = [float(r[1].rstrip("%")) for r in rows]
    assert all(s > 0 for s in savings)
    # Overlap and placement compose: overlapped vela is the fastest config.
    vela_pl = LocalityAwarePlacement().place(problem)
    over = OverlappedMasterWorkerEngine(
        config.model, config.topology, vela_pl, config.tokens_per_step,
        config.seq_len).run_trace(trace)
    base = MasterWorkerEngine(
        config.model, config.topology, vela_pl, config.tokens_per_step,
        config.seq_len).run_trace(trace)
    assert over.avg_step_time() < base.avg_step_time()


def test_batched_serving_shares_fetches(benchmark):
    """Continuous batching amortizes expert fetches across streams."""
    from repro.models import mixtral_8x7b_sim
    from repro.serving import (BatchedDecodeSimulator, ExpertCache, Request)

    config = mixtral_8x7b_sim()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
    requests = [Request(i, 0.0, 24) for i in range(8)]

    def run(max_batch):
        cache = ExpertCache(config.total_experts // 2)
        sim = BatchedDecodeSimulator(config, router, cache,
                                     max_batch=max_batch, seed=1)
        return sim.run(requests)

    serial, batched = benchmark.pedantic(
        lambda: (run(1), run(8)), rounds=1, iterations=1)
    rows = [["serial (batch=1)", serial.wall_time,
             serial.throughput_tokens_per_s(), percent(serial.hit_rate)],
            ["batched (batch=8)", batched.wall_time,
             batched.throughput_tokens_per_s(), percent(batched.hit_rate)]]
    print("\nContinuous batching (8 requests x 24 tokens, 50% cache):")
    print(format_table(["mode", "wall time (s)", "tokens/s", "hit rate"],
                       rows))
    assert batched.throughput_tokens_per_s() > \
        serial.throughput_tokens_per_s()


def test_multimaster_tradeoff(benchmark, workload):
    """Backbone data parallelism: step time vs traffic as masters scale."""
    from repro.placement import LocalityAwarePlacement
    from repro.runtime import (MasterWorkerEngine, MultiMasterEngine,
                               effective_bandwidths)

    config = workload.config
    trace = workload.trace(8)

    def sweep():
        rows = []
        for masters in ([0], [0, 2], [0, 2, 4]):
            bw = effective_bandwidths(config.topology, masters)
            problem = PlacementProblem(
                config=config.model, topology=config.topology,
                probability_matrix=workload.probability_matrix,
                tokens_per_step=config.tokens_per_step,
                capacities=config.worker_capacities(),
                bandwidth_override=bw if len(masters) > 1 else None)
            placement = LocalityAwarePlacement().place(problem)
            if len(masters) == 1:
                engine = MasterWorkerEngine(
                    config.model, config.topology, placement,
                    config.tokens_per_step, config.seq_len)
            else:
                engine = MultiMasterEngine(
                    config.model, config.topology, placement,
                    config.tokens_per_step, config.seq_len,
                    master_ids=masters)
            run = engine.run_trace(trace)
            rows.append([len(masters), run.avg_step_time(),
                         run.avg_external_traffic_per_node() / 1e6])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nMulti-master (backbone DP) sweep at paper scale:")
    print(format_table(["masters", "step time (s)", "MB/node/step"], rows))
    times = [r[1] for r in rows]
    traffic = [r[2] for r in rows]
    # the tradeoff: faster steps, more cross-node traffic
    assert times[-1] < times[0]
    assert traffic[-1] > traffic[0]
