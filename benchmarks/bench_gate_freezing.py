"""Gate freezing vs gate fine-tuning: the design choice behind Section V-A.

The paper freezes the gating mechanism during fine-tuning (citing Shen et
al.'s finding that tuning it degrades performance) — and VELA's whole
premise relies on the consequence: a frozen gate keeps the locality profile
valid.  This experiment measures the counterfactual on a live model: LoRA
fine-tune the same pre-trained checkpoint twice, once with the router frozen
and once with LoRA adapters on the router too, and compare routing drift.
"""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.bench.workloads import tiny_finetune_workload
from repro.finetune import FineTuneConfig, Trainer, pretrain_router
from repro.lora import LoRAConfig

STEPS = 60

FROZEN_GATE = LoRAConfig()  # default: gate.router excluded
TUNED_GATE = LoRAConfig(
    target_substrings=FROZEN_GATE.target_substrings + ("gate.router",),
    exclude_substrings=())


def run_variant(lora_config, seed=0):
    model, loader = tiny_finetune_workload(seed=seed)
    pretrain_router(model, loader, steps=40)
    trainer = Trainer(model, loader,
                      FineTuneConfig(steps=STEPS, lr=1e-3, lora=lora_config))
    result = trainer.train()
    freq = result.trace.access_frequency_over_time(0)
    drift = float(np.abs(freq - freq[0]).max())
    profile_start = result.trace.probability_matrix(0, 10)
    profile_end = result.trace.probability_matrix(STEPS - 10, STEPS)
    tv = float(0.5 * np.abs(profile_end - profile_start).sum(axis=1).mean()
               / result.trace.top_k * 2)
    return drift, tv, result


_cache = {}


def variants():
    if not _cache:
        _cache["frozen"] = run_variant(FROZEN_GATE)
        _cache["tuned"] = run_variant(TUNED_GATE)
    return _cache


def test_gate_freezing_preserves_locality(benchmark):
    """Frozen-gate drift must not exceed tuned-gate drift."""
    results = benchmark.pedantic(variants, rounds=1, iterations=1)
    rows = [[name, drift, tv]
            for name, (drift, tv, _) in results.items()]
    print("\nGate freezing vs gate fine-tuning (block-0 routing, "
          f"{STEPS} steps, lr 1e-3):")
    print(format_table(["gate", "max freq drift", "profile TV shift"], rows))
    frozen_drift = results["frozen"][0]
    tuned_drift = results["tuned"][0]
    assert frozen_drift <= tuned_drift + 1e-9

    # The frozen gate must stay in the regime where a one-time profile is a
    # safe placement input.
    assert frozen_drift < 0.08


def test_tuned_gate_still_learns(benchmark):
    """Sanity: the tuned-gate variant is a real training run, not a crash."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = variants()
    _, _, tuned_result = results["tuned"]
    assert np.all(np.isfinite(tuned_result.losses))
    # router adapters actually received gradients
    assert any("gate.router" in path
               for path in tuned_result.lora_report.adapted_paths)
