"""LP solver benchmarks: formulation build time and solve time at paper
scale (N=6 workers, L=32 blocks, E=8 experts -> 1,568 variables), plus the
built-in simplex on reduced instances.
"""

import numpy as np
import pytest

from repro.cluster import ExpertMemoryModel, paper_cluster
from repro.models import mixtral_8x7b_sim, nano_moe
from repro.placement import (LocalityAwarePlacement, PlacementProblem,
                             build_placement_lp, solve_lp_scipy,
                             solve_lp_simplex)
from repro.routing import SyntheticRouter, WIKITEXT_REGIME


@pytest.fixture(scope="module")
def paper_scale_problem():
    config = mixtral_8x7b_sim()
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
    return PlacementProblem(
        config=config, topology=topology,
        probability_matrix=router.probability_matrix(8192),
        tokens_per_step=1920,
        capacities=ExpertMemoryModel().capacities(topology, config))


@pytest.fixture(scope="module")
def nano_problem():
    config = nano_moe()
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=1)
    return PlacementProblem(
        config=config, topology=topology,
        probability_matrix=router.probability_matrix(2048),
        tokens_per_step=512)


def test_build_lp_paper_scale(benchmark, paper_scale_problem):
    lp = benchmark(build_placement_lp, paper_scale_problem)
    assert lp.num_vars == 6 * 32 * 8 + 32


def test_solve_highs_paper_scale(benchmark, paper_scale_problem):
    lp = build_placement_lp(paper_scale_problem)
    solution = benchmark(solve_lp_scipy, lp)
    x = lp.extract_assignment(solution)
    np.testing.assert_allclose(x.sum(axis=0), 1.0, atol=1e-6)


def test_full_vela_pipeline_paper_scale(benchmark, paper_scale_problem):
    """Profile-to-placement latency a user pays before fine-tuning starts."""
    solution = benchmark(LocalityAwarePlacement().solve, paper_scale_problem)
    assert solution.placement.worker_loads(6).sum() == 256


def test_simplex_nano_scale(benchmark, nano_problem):
    lp = build_placement_lp(nano_problem)
    solution = benchmark.pedantic(solve_lp_simplex, (lp,), rounds=1,
                                  iterations=1)
    reference = solve_lp_scipy(lp)
    assert lp.objective_value(solution) == \
        pytest.approx(lp.objective_value(reference), rel=1e-6, abs=1e-12)


def test_simplex_paper_scale_correctness(benchmark, paper_scale_problem):
    """The from-scratch simplex solves the real 1,568-variable instance."""
    lp = build_placement_lp(paper_scale_problem)
    solution = benchmark.pedantic(solve_lp_simplex, (lp,), rounds=1,
                                  iterations=1)
    reference = solve_lp_scipy(lp)
    assert lp.objective_value(solution) == \
        pytest.approx(lp.objective_value(reference), rel=1e-4)
