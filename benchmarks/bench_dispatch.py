"""Fused vs reference MoE dispatch — step-time and equivalence benchmark.

Measures full forward+backward step time of one :class:`MoEBlock` under the
two dispatch implementations at several ``(tokens, experts, top_k)`` points:

``reference (f64)``
    The seed's per-(slot, expert) loop in the seed's float64 default — the
    training hot loop this PR replaces.
``fused (f64)``
    The sort → segment-GEMM → scatter-add dispatch at the same precision
    (the like-for-like structural speedup).
``fused (f32)``
    The fused dispatch under ``set_default_dtype(np.float32)`` — the shipped
    hot-loop configuration (fused kernels + float32 compute mode).

Every point is also equivalence-checked in float64: outputs, input
gradients, and all parameter gradients of the two dispatch paths must agree
to ``< 1e-6`` max elementwise divergence (they agree to ~1e-12 in practice).

Run standalone for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_dispatch.py --output BENCH_dispatch.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import format_table
from repro.models import MoEBlock
from repro.nn import Tensor
from repro.nn.tensor import default_dtype

HIDDEN = 64
FFN_HIDDEN = 128
BATCH = 8

# (tokens, experts, top_k); (2048, 8, 2) is the acceptance point.
POINTS = [
    (512, 8, 2),
    (2048, 8, 2),
    (2048, 8, 1),
    (2048, 16, 2),
]

HEADLINE_POINT = (2048, 8, 2)
HEADLINE_MIN_SPEEDUP = 3.0
EQUIVALENCE_TOL = 1e-6


def _make_block(experts: int, top_k: int, dispatch: str) -> MoEBlock:
    return MoEBlock(HIDDEN, FFN_HIDDEN, experts, top_k,
                    rng=np.random.default_rng(0), dispatch=dispatch)


def _make_input(tokens: int, dtype=np.float64) -> np.ndarray:
    x = np.random.default_rng(1).normal(size=(BATCH, tokens // BATCH, HIDDEN))
    return x.astype(dtype)


def _step_time(block: MoEBlock, x: np.ndarray, iters: int = 7) -> float:
    """Min-of-``iters`` forward+backward wall time (first call warms BLAS)."""
    best = float("inf")
    for _ in range(iters + 1):
        block.zero_grad()
        xt = Tensor(x, requires_grad=True)
        start = time.perf_counter()
        out = block(xt)
        out.backward(np.ones_like(out.data))
        best = min(best, time.perf_counter() - start)
    return best


def measure_point(tokens: int, experts: int, top_k: int) -> dict:
    """Step times and speedups of one benchmark point."""
    x64 = _make_input(tokens)
    t_ref = _step_time(_make_block(experts, top_k, "reference"), x64)
    t_fused64 = _step_time(_make_block(experts, top_k, "fused"), x64)
    with default_dtype(np.float32):
        t_fused32 = _step_time(_make_block(experts, top_k, "fused"),
                               x64.astype(np.float32))
    return {
        "tokens": tokens,
        "experts": experts,
        "top_k": top_k,
        "hidden": HIDDEN,
        "ffn_hidden": FFN_HIDDEN,
        "reference_f64_ms": t_ref * 1e3,
        "fused_f64_ms": t_fused64 * 1e3,
        "fused_f32_ms": t_fused32 * 1e3,
        "speedup_same_dtype": t_ref / t_fused64,
        "speedup_hot_loop": t_ref / t_fused32,
    }


def max_divergence(tokens: int, experts: int, top_k: int) -> float:
    """Max elementwise |fused - reference| over outputs and all gradients.

    Runs both dispatch paths in float64 on identically-initialized blocks
    and identical inputs; covers the output, the input gradient, and every
    parameter gradient (gate and experts).
    """
    x = _make_input(tokens)
    ref = _make_block(experts, top_k, "reference")
    fused = _make_block(experts, top_k, "fused")
    worst = 0.0

    xr = Tensor(x, requires_grad=True)
    out_ref = ref(xr)
    out_ref.backward(np.ones_like(out_ref.data))
    xf = Tensor(x, requires_grad=True)
    out_fused = fused(xf)
    out_fused.backward(np.ones_like(out_fused.data))

    worst = max(worst, float(np.abs(out_ref.data - out_fused.data).max()))
    worst = max(worst, float(np.abs(xr.grad - xf.grad).max()))
    ref_params = dict(ref.named_parameters())
    for name, p_fused in fused.named_parameters():
        p_ref = ref_params[name]
        if p_ref.grad is None or p_fused.grad is None:
            assert p_ref.grad is None and p_fused.grad is None, name
            continue
        worst = max(worst, float(np.abs(p_ref.grad - p_fused.grad).max()))
    return worst


# --------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------- #
def test_headline_speedup(benchmark):
    """Acceptance point: >= 3x hot-loop speedup, < 1e-6 f64 divergence."""
    tokens, experts, top_k = HEADLINE_POINT
    result = benchmark.pedantic(
        lambda: measure_point(tokens, experts, top_k), rounds=1, iterations=1)
    divergence = max_divergence(tokens, experts, top_k)
    print(f"\ndispatch @ (tokens={tokens}, experts={experts}, top_k={top_k}): "
          f"reference {result['reference_f64_ms']:.1f} ms, "
          f"fused f64 {result['fused_f64_ms']:.1f} ms, "
          f"fused f32 {result['fused_f32_ms']:.1f} ms, "
          f"hot-loop speedup {result['speedup_hot_loop']:.2f}x, "
          f"f64 divergence {divergence:.2e}")
    assert divergence < EQUIVALENCE_TOL
    assert result["speedup_hot_loop"] >= HEADLINE_MIN_SPEEDUP, result


def test_equivalence_all_points():
    """Fused and reference agree in float64 at every benchmark point."""
    for tokens, experts, top_k in POINTS:
        divergence = max_divergence(min(tokens, 512), experts, top_k)
        assert divergence < EQUIVALENCE_TOL, (tokens, experts, top_k)


def test_fused_is_faster_same_dtype():
    """Even at equal precision the fused path wins at the headline point."""
    tokens, experts, top_k = HEADLINE_POINT
    result = measure_point(tokens, experts, top_k)
    assert result["speedup_same_dtype"] > 1.2, result


# --------------------------------------------------------------------- #
# standalone runner (JSON artifact)
# --------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if the headline point misses "
                             f"{HEADLINE_MIN_SPEEDUP}x")
    args = parser.parse_args(argv)

    results = [measure_point(*point) for point in POINTS]
    divergence = max_divergence(*HEADLINE_POINT)

    rows = [[f"({r['tokens']}, {r['experts']}, {r['top_k']})",
             f"{r['reference_f64_ms']:.1f}",
             f"{r['fused_f64_ms']:.1f}",
             f"{r['fused_f32_ms']:.1f}",
             f"{r['speedup_same_dtype']:.2f}x",
             f"{r['speedup_hot_loop']:.2f}x"] for r in results]
    print(format_table(
        ["(tokens, experts, top_k)", "ref f64 (ms)", "fused f64 (ms)",
         "fused f32 (ms)", "speedup (same dtype)", "speedup (hot loop)"],
        rows))
    print(f"max f64 divergence @ headline point: {divergence:.2e}")

    headline = next(r for r in results
                    if (r["tokens"], r["experts"], r["top_k"]) == HEADLINE_POINT)
    payload = {
        "hidden": HIDDEN,
        "ffn_hidden": FFN_HIDDEN,
        "points": results,
        "headline": {
            "point": list(HEADLINE_POINT),
            "speedup_hot_loop": headline["speedup_hot_loop"],
            "min_required": HEADLINE_MIN_SPEEDUP,
            "max_f64_divergence": divergence,
            "divergence_tolerance": EQUIVALENCE_TOL,
        },
    }
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")

    ok = (divergence < EQUIVALENCE_TOL
          and headline["speedup_hot_loop"] >= HEADLINE_MIN_SPEEDUP)
    print(f"headline: {headline['speedup_hot_loop']:.2f}x "
          f"(required {HEADLINE_MIN_SPEEDUP}x) -> {'PASS' if ok else 'MISS'}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
