"""Shared fixtures for the benchmark suite.

Benchmarks regenerate the paper's figures; traces and comparison runs are
cached at session scope so Fig. 5 (traffic) and Fig. 6 (step time) share one
simulation per (model, dataset) cell, exactly as one physical run would
produce both measurements.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench import paper_workload, run_comparison_experiment

# Steps per simulated fine-tuning run.  The paper uses 500; 120 keeps the
# full benchmark suite in CI range while preserving per-step dynamics.
BENCH_STEPS = 120
SEED = 1

_cache = {}


def comparison(model: str, dataset: str):
    """Run (or fetch) the four-strategy comparison for one figure cell."""
    key = (model, dataset)
    if key not in _cache:
        _cache[key] = run_comparison_experiment(model, dataset,
                                                num_steps=BENCH_STEPS,
                                                seed=SEED)
    return _cache[key]


@pytest.fixture(scope="session")
def mixtral_wikitext():
    return comparison("mixtral", "wikitext")


@pytest.fixture(scope="session")
def mixtral_alpaca():
    return comparison("mixtral", "alpaca")


@pytest.fixture(scope="session")
def gritlm_wikitext():
    return comparison("gritlm", "wikitext")


@pytest.fixture(scope="session")
def gritlm_alpaca():
    return comparison("gritlm", "alpaca")
