"""Ablations of the placement design choices (DESIGN.md §5).

Not figures from the paper — these quantify the decisions the paper makes:

1. LP+rounding vs the exact MILP optimum (integrality gap).
2. LP vs a greedy locality-aware heuristic (what the LP formulation buys).
3. Sensitivity to worker capacity slack.
4. Sensitivity to access skew (Dirichlet concentration sweep).
5. Sensitivity to intra/cross bandwidth heterogeneity.
"""

import numpy as np
import pytest

from repro.bench.report import format_table, percent
from repro.cluster import (ExpertMemoryModel, bandwidth_ratio_cluster,
                           paper_cluster)
from repro.models import mixtral_8x7b_sim, nano_moe
from repro.placement import (ExactMILPPlacement, GreedyPlacement,
                             LocalityAwarePlacement, PlacementProblem,
                             SequentialPlacement, expected_step_comm_time)
from repro.routing import SyntheticRouter, WIKITEXT_REGIME, regime_with_alpha


def paper_problem(alpha=None, topology=None, capacities=None, seed=1):
    config = mixtral_8x7b_sim()
    topology = topology or paper_cluster()
    regime = WIKITEXT_REGIME if alpha is None else regime_with_alpha(alpha)
    router = SyntheticRouter(config, regime, seed=seed)
    if capacities is None:
        capacities = ExpertMemoryModel().capacities(topology, config)
    return PlacementProblem(
        config=config, topology=topology,
        probability_matrix=router.probability_matrix(8192),
        tokens_per_step=1920, capacities=capacities)


def test_lp_vs_milp_gap_small_instance(benchmark):
    """LP relax+round stays close to the exact binary optimum."""
    config = nano_moe()
    topology = paper_cluster()
    router = SyntheticRouter(config, WIKITEXT_REGIME, seed=3)
    problem = PlacementProblem(config=config, topology=topology,
                               probability_matrix=router.probability_matrix(4096),
                               tokens_per_step=512,
                               capacities=[1, 2, 2, 2, 2, 2])
    vela = benchmark.pedantic(LocalityAwarePlacement().solve, (problem,),
                              rounds=1, iterations=1)
    milp = ExactMILPPlacement(time_limit=60).place(problem)
    milp_obj = expected_step_comm_time(milp, problem)
    gap = (vela.rounded_objective - milp_obj) / milp_obj
    print(f"\nLP+round vs exact MILP: rounded={vela.rounded_objective:.2e}s "
          f"exact={milp_obj:.2e}s gap={percent(max(gap, 0))}")
    assert vela.rounded_objective >= milp_obj - 1e-12
    assert gap < 0.25


def test_lp_vs_greedy_paper_scale(benchmark):
    """The LP formulation beats the greedy heuristic at paper scale."""
    problem = paper_problem()
    vela_obj = benchmark.pedantic(
        lambda: expected_step_comm_time(
            LocalityAwarePlacement().place(problem), problem),
        rounds=1, iterations=1)
    greedy_obj = expected_step_comm_time(GreedyPlacement().place(problem),
                                         problem)
    seq_obj = expected_step_comm_time(SequentialPlacement().place(problem),
                                      problem)
    print(f"\nEq.(7) objective: vela={vela_obj:.3f}s greedy={greedy_obj:.3f}s "
          f"sequential={seq_obj:.3f}s")
    assert vela_obj <= greedy_obj + 1e-12
    assert greedy_obj <= seq_obj + 1e-12


def test_capacity_slack_sweep(benchmark):
    """VELA's advantage grows with capacity slack and collapses when every
    worker is forced to an exact equal share."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = []
    for label, caps in [("exact-fit", None),
                        ("uniform-43", [43] * 6),
                        ("uniform-52", [52] * 6),
                        ("uniform-64", [64] * 6)]:
        problem = paper_problem(capacities=caps)
        vela = expected_step_comm_time(
            LocalityAwarePlacement().place(problem), problem)
        seq = expected_step_comm_time(
            SequentialPlacement().place(problem), problem)
        results.append([label, vela, seq, percent(1 - vela / seq)])
    print("\nCapacity slack sweep (Eq.(7) objective):")
    print(format_table(["capacities", "vela (s)", "sequential (s)",
                        "reduction"], results))
    reductions = [float(r[3].rstrip("%")) for r in results]
    assert reductions[-1] >= reductions[1] - 1.0  # more slack, no worse


def test_skew_sweep(benchmark):
    """VELA's benefit shrinks monotonically (roughly) as access flattens."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    reductions = []
    for alpha in (0.5, 1.5, 3.0, 8.0, 30.0):
        problem = paper_problem(alpha=alpha)
        vela = expected_step_comm_time(
            LocalityAwarePlacement().place(problem), problem)
        seq = expected_step_comm_time(
            SequentialPlacement().place(problem), problem)
        red = 1 - vela / seq
        reductions.append(red)
        rows.append([alpha, vela, seq, percent(red)])
    print("\nSkew sweep (Dirichlet alpha -> Eq.(7) reduction vs sequential):")
    print(format_table(["alpha", "vela (s)", "seq (s)", "reduction"], rows))
    # strong skew must beat weak skew by a clear margin
    assert reductions[0] > reductions[-1] + 0.05


def test_bandwidth_heterogeneity_sweep(benchmark):
    """At bandwidth ratio 1 the topology is flat and locality placement
    degenerates toward plain load balancing."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    reductions = []
    for ratio in (1.0, 4.0, 15.6, 40.0):
        topology = bandwidth_ratio_cluster(ratio=ratio)
        problem = paper_problem(topology=topology, capacities=[16] + [48] * 5)
        vela = expected_step_comm_time(
            LocalityAwarePlacement().place(problem), problem)
        seq = expected_step_comm_time(
            SequentialPlacement().place(problem), problem)
        red = 1 - vela / seq
        reductions.append(red)
        rows.append([ratio, percent(red)])
    print("\nIntra/cross bandwidth ratio sweep (reduction vs sequential):")
    print(format_table(["ratio", "reduction"], rows))
    assert reductions[2] > reductions[0]  # heterogeneity is what VELA exploits


def test_ep_sync_overhead_ablation(benchmark):
    """Zeroing the EP sync software overhead shrinks (but does not erase)
    VELA's step-time advantage — the remainder is placement + framework."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.bench import paper_workload
    from repro.placement import ExpertParallelPlacement
    from repro.runtime import ExpertParallelEngine, MasterWorkerEngine

    workload = paper_workload("mixtral", "wikitext", seed=1)
    trace = workload.trace(num_steps=10)
    cfg = workload.config
    problem = PlacementProblem(config=cfg.model, topology=cfg.topology,
                               probability_matrix=workload.probability_matrix,
                               tokens_per_step=cfg.tokens_per_step,
                               capacities=cfg.worker_capacities())
    vela_run = MasterWorkerEngine(cfg.model, cfg.topology,
                                  LocalityAwarePlacement().place(problem),
                                  cfg.tokens_per_step, cfg.seq_len
                                  ).run_trace(trace)
    ep_placement = ExpertParallelPlacement().place(problem)
    rows = []
    for label, overhead in [("measured (8ms)", 0.008), ("idealized (0ms)", 0.0)]:
        ep_run = ExpertParallelEngine(cfg.model, cfg.topology, ep_placement,
                                      cfg.tokens_per_step, cfg.seq_len,
                                      sync_software_overhead_s=overhead
                                      ).run_trace(trace)
        red = 1 - vela_run.avg_step_time() / ep_run.avg_step_time()
        rows.append([label, ep_run.avg_step_time(), percent(red)])
    print("\nEP sync-overhead ablation:")
    print(format_table(["EP sync model", "EP step (s)", "vela speedup"], rows))
    assert float(rows[0][2].rstrip("%")) > float(rows[1][2].rstrip("%"))
    assert float(rows[1][2].rstrip("%")) > 0  # advantage persists


def test_local_search_refinement(benchmark):
    """Closing the rounding gap with swap/move local search."""
    from repro.placement import (LocalityAwarePlacement,
                                 RefinedLocalityPlacement)

    problem = paper_problem()
    solution = LocalityAwarePlacement().solve(problem)
    report = benchmark.pedantic(RefinedLocalityPlacement().solve, (problem,),
                                rounds=1, iterations=1)
    rows = [["LP bound (relaxed)", solution.lp_objective * 1e3],
            ["rounded (paper)", solution.rounded_objective * 1e3],
            ["rounded + local search", report.refined_objective * 1e3]]
    print("\nRounding-gap ablation (Eq.(7) objective):")
    print(format_table(["solution", "objective (ms)"], rows))
    print(f"moves={report.moves_applied} swaps={report.swaps_applied}, "
          f"gap to LP bound: "
          f"{percent(solution.rounded_objective / solution.lp_objective - 1)}"
          f" -> {percent(report.refined_objective / solution.lp_objective - 1)}")
    assert report.refined_objective <= solution.rounded_objective + 1e-12
    assert report.refined_objective >= solution.lp_objective - 1e-12
